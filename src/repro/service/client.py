"""Client side of the sweep service: submit, poll, journal, resume.

:func:`run_remote_sweep` mirrors :func:`repro.core.parallel.run_sweep` —
same axes/extra-axes enumeration, same journal format (fingerprint header
included), same resume and progress contracts, same
:class:`~repro.core.parallel.SweepRecords` return — but execution happens
on whatever fleet is connected to the controller at ``HOST:PORT``.

The client enumerates the sweep points *locally* and ships explicit
``(index, overrides, kwargs, seed)`` tuples, rather than shipping the axes
and letting the controller enumerate: the per-point derived seeds
(:func:`repro.rng.sweep_seed`) hash the coordinate *values*, and a JSON
round-trip can change value types (tuples to lists) — deriving on the far
side could silently disagree with a local run.  Shipping the derived seed
pins the bit-identical contract at the protocol boundary.
"""

from __future__ import annotations

import socket
import time
from dataclasses import asdict
from typing import Any, Callable, Mapping, Optional, Sequence

from ..analysis.io import append_jsonl
from ..config import NetworkConfig
from ..core import cache as result_cache
from ..core.parallel import (
    SweepHealth,
    SweepProgress,
    SweepRecords,
    _jsonable,
    _journal_header,
    _load_journal,
    check_journal_fingerprint,
    enumerate_points,
    sweep_fingerprint,
)
from .protocol import MessageStream, parse_address
from .worker import importable_name

__all__ = ["ServiceClient", "run_remote_sweep"]


class ServiceClient:
    """A thin RPC handle on the controller (submit / poll / info)."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = MessageStream(sock)
        reply = self._stream.rpc({"type": "hello", "role": "client"})
        if reply.get("type") != "welcome":
            self._stream.close()
            raise ConnectionError(f"controller refused hello: {reply}")

    def _rpc(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        reply = self._stream.rpc(msg)
        if reply.get("type") == "error":
            raise RuntimeError(f"service error: {reply.get('error')}")
        return reply

    def submit(
        self,
        base: Mapping[str, Any],
        points: Sequence[Mapping[str, Any]],
        runner_spec: Mapping[str, Any],
        *,
        options: Optional[Mapping[str, Any]] = None,
        label: str = "",
    ) -> dict[str, Any]:
        return self._rpc(
            {
                "type": "submit",
                "base": dict(base),
                "points": list(points),
                "runner": dict(runner_spec),
                "options": dict(options or {}),
                "label": label,
            }
        )

    def poll(self, job_id: str, since: int = 0) -> dict[str, Any]:
        return self._rpc({"type": "poll", "job_id": job_id, "since": since})

    def info(self) -> dict[str, Any]:
        return self._rpc({"type": "info"})

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_remote_sweep(
    address: str,
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, Any]],
    *,
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    journal=None,
    resume: bool = False,
    resume_force: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
    derive_seeds: bool = True,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    seed_jitter: bool = True,
    poll_interval: float = 0.2,
    label: str = "",
) -> SweepRecords:
    """Run a sweep on the service at ``address`` (``"host:port"``).

    The signature and semantics mirror :func:`repro.core.parallel.run_sweep`
    minus the local-executor knobs (``n_workers``, ``point_timeout``,
    ``cache`` — the *controller* owns the shared cache).  Records come
    back bit-identical to a serial run (modulo ``wall_seconds``), in
    canonical enumeration order, with the controller's
    :class:`~repro.core.parallel.SweepHealth` attached.  ``seed_jitter``
    defaults to True here — deterministic retry timelines are the point
    of a self-healing service — where the local driver defaults to the
    historical unseeded jitter.

    ``journal``/``resume`` checkpoint on the *client*: each record is
    appended as it streams back, so a client killed mid-sweep resumes by
    re-submitting only the missing points (the service's cache typically
    answers the overlap without re-running it).
    """
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    host, port = parse_address(address)
    spec = result_cache.runner_spec(runner)
    if importable_name(spec) is None:
        raise ValueError(
            "remote sweeps need an importable module-level runner (or a "
            "functools.partial over one with keyword bindings only); "
            f"{runner!r} has no dotted name the workers could import"
        )
    points = enumerate_points(base, axes, extra_axes, derive_seeds=derive_seeds)
    by_index = {p.index: p for p in points}
    fingerprint = sweep_fingerprint(base, axes, extra_axes)
    results: dict[int, dict[str, Any]] = {}
    if journal is not None:
        if resume:
            check_journal_fingerprint(journal, fingerprint, force=resume_force)
            results.update(_load_journal(journal, points))
            open(journal, "w").close()
            append_jsonl(_journal_header(fingerprint, len(points)), journal)
            append_jsonl(
                (
                    {
                        "index": index,
                        "point": _jsonable(by_index[index].coords),
                        "record": record,
                    }
                    for index, record in sorted(results.items())
                ),
                journal,
            )
        else:
            open(journal, "w").close()
            append_jsonl(_journal_header(fingerprint, len(points)), journal)
    resumed_ok = sum(1 for r in results.values() if not r.get("failed"))
    resumed_failed = len(results) - resumed_ok

    payload = [
        {
            "index": p.index,
            "overrides": _jsonable(p.overrides),
            "kwargs": _jsonable(p.kwargs),
            "seed": p.seed,
        }
        for p in points
        if p.index not in results
    ]
    start = time.monotonic()
    health = SweepHealth(total=len(points))
    with ServiceClient(host, port) as client:
        if payload:
            submitted = client.submit(
                asdict(base),
                payload,
                spec,
                options={
                    "max_retries": max_retries,
                    "retry_backoff": retry_backoff,
                    "seed_jitter": seed_jitter,
                },
                label=label,
            )
            job_id = submitted["job_id"]
            fetched = 0
            completed_in_run = 0
            try:
                while True:
                    status = client.poll(job_id, since=fetched)
                    for item in status["records"]:
                        index, record = int(item["index"]), item["record"]
                        results[index] = record
                        fetched += 1
                        completed_in_run += 1
                        if journal is not None:
                            append_jsonl(
                                {
                                    "index": index,
                                    "point": _jsonable(by_index[index].coords),
                                    "record": record,
                                },
                                journal,
                            )
                        if progress is not None:
                            elapsed = time.monotonic() - start
                            rate = completed_in_run / elapsed if elapsed > 0 else 0.0
                            left = len(points) - len(results)
                            progress(
                                SweepProgress(
                                    done=len(results),
                                    total=len(points),
                                    failed=sum(
                                        1 for r in results.values() if r.get("failed")
                                    ),
                                    elapsed=elapsed,
                                    rate=rate,
                                    eta=left / rate if rate > 0 else float("inf"),
                                )
                            )
                    if status["finished"]:
                        health = SweepHealth(**status["health"])
                        break
                    time.sleep(poll_interval)
            except KeyboardInterrupt:
                # Mirror run_sweep: flush what we know so the journal tells
                # the whole story; per-point records are already flushed,
                # which is what makes resume=True after a Ctrl-C work.
                health.interrupted = True
                if journal is not None:
                    append_jsonl({"health": asdict(health)}, journal)
                raise
    # Fold the resumed-journal points back into the totals, exactly as the
    # local driver counts them.
    health.total = len(points)
    health.ok += resumed_ok
    health.failed += resumed_failed
    return SweepRecords((results[p.index] for p in points), health)
