"""The sweep-service controller: leases, liveness, quarantine, fallback.

The controller owns every submitted sweep as a queue of *leases*: a point
handed to a worker stays owned by the controller, with a deadline.  The
failure model (DESIGN.md §5h) is built from four mechanisms:

* **Leases.**  A dispatched point is leased, never given away.  If the
  worker's lease expires — it died, hung, or lost its network — the point
  is re-queued with one attempt charged and re-leased to any worker, so a
  lost worker delays its points but never loses them.
* **Heartbeats.**  Workers heartbeat between and *during* point
  executions.  A worker silent past ``heartbeat_timeout`` is declared
  dead: its leases re-queue immediately instead of waiting out their
  deadlines, and the worker record is dropped (a reconnecting worker
  re-registers fresh).
* **Quarantine.**  A live worker whose leases keep expiring (a machine
  swapping itself to death, a half-broken accelerator) is quarantined
  after ``quarantine_after`` consecutive lease failures: it keeps
  heartbeating but is refused new leases for ``quarantine_seconds``.  One
  successful result clears the streak.
* **Fallback.**  If no workers are connected for ``fallback_after``
  seconds while work is queued, the controller runs the remaining points
  itself on the local process-pool executor
  (:func:`repro.core.parallel._run_pool`) — a submitted sweep always
  completes, fleet or no fleet.

Retries reuse :class:`repro.core.resilience.RetryPolicy` with jitter
seeded from the sweep's base seed, so the retry timeline of a chaos test
is reproducible.  The shared result cache answers hits at submit time
without dispatching anything, and worker results are written back so any
worker's result is every client's hit.

The :class:`Controller` itself is a pure, lock-protected state machine
driven by :meth:`Controller.handle` (one message in, one reply out),
:meth:`Controller.tick` (time-based transitions), and
:meth:`Controller.session_closed` — with an injectable clock, so the
whole failure model is unit-testable without sockets or sleeps.
:class:`ControllerServer` wraps it in a threading TCP server and a
monitor thread that ticks it for real deployments.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Mapping, Optional

from ..config import NetworkConfig
from ..core import cache as result_cache
from ..core.parallel import (
    SweepHealth,
    SweepPoint,
    _execute_point,
    _failed_record,
    _run_pool,
)
from ..core.resilience import RetryPolicy
from .protocol import MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError, decode, encode
from .worker import importable_name, resolve_runner

__all__ = ["Controller", "ControllerServer", "ServiceOptions"]


@dataclass(frozen=True)
class ServiceOptions:
    """Controller tuning knobs; the defaults suit LAN-local fleets."""

    #: Seconds a worker owns a lease before it is presumed lost.
    lease_seconds: float = 60.0
    #: Seconds of worker silence before its leases re-queue.
    heartbeat_timeout: float = 10.0
    #: Interval the controller asks workers to heartbeat at.
    heartbeat_interval: float = 2.0
    #: Consecutive lease failures before a worker is quarantined.
    quarantine_after: int = 3
    #: Seconds a quarantined worker is refused new leases.
    quarantine_seconds: float = 30.0
    #: Seconds with no live workers before the local fallback kicks in
    #: (``None`` disables the fallback entirely).
    fallback_after: Optional[float] = 15.0
    #: Process-pool width of the local fallback executor.
    fallback_workers: int = 1
    #: Seconds an idle worker is told to wait before asking again.
    idle_backoff: float = 0.5


@dataclass
class Lease:
    """One point out with one worker, until ``deadline``."""

    lease_id: str
    job_id: str
    index: int
    attempt: int
    worker_id: str
    deadline: float


@dataclass
class WorkerState:
    """Liveness and quarantine bookkeeping for one registered worker."""

    worker_id: str
    last_seen: float
    leases: set[str] = field(default_factory=set)
    completed: int = 0
    consecutive_failures: int = 0
    quarantined_until: float = 0.0

    def quarantined(self, now: float) -> bool:
        return now < self.quarantined_until


class Job:
    """One submitted sweep: its points, queues, results, and health."""

    def __init__(
        self,
        job_id: str,
        base: dict[str, Any],
        points: list[dict[str, Any]],
        runner_spec: Mapping[str, Any],
        policy: RetryPolicy,
        label: str = "",
    ) -> None:
        self.job_id = job_id
        self.base = base
        self.label = label
        self.runner_spec = dict(runner_spec)
        self.policy = policy
        self.points: dict[int, dict[str, Any]] = {int(p["index"]): p for p in points}
        #: (index, attempt) pairs ready to lease, in submission order.
        self.pending: list[tuple[int, int]] = [(int(p["index"]), 0) for p in points]
        #: backoff retries as (ready_time, index, attempt).
        self.delayed: list[tuple[float, int, int]] = []
        #: indices currently leased (values are lease ids).
        self.leased: dict[int, str] = {}
        self.results: dict[int, dict[str, Any]] = {}
        #: indices in completion order, for incremental ``poll`` replies.
        self.completion_order: list[int] = []
        self.health = SweepHealth(total=len(points))
        self.cache_keys: dict[int, str] = {}
        self.cache_meta: dict[int, dict[str, Any]] = {}
        self.created = 0.0
        self.fallback_active = False

    @property
    def finished(self) -> bool:
        return len(self.results) >= len(self.points)

    def sweep_point(self, index: int) -> SweepPoint:
        p = self.points[index]
        return SweepPoint(index, dict(p["overrides"]), dict(p["kwargs"]), int(p["seed"]))


class Controller:
    """The service state machine; thread-safe, clock-injectable.

    ``handle(msg, session)`` processes one protocol message and returns the
    reply; ``session`` is any dict the transport keeps per connection (the
    controller stores the peer's identity in it).  ``tick()`` advances
    time-based state: lease expiry, worker liveness, retry-backoff
    promotion, and the no-worker fallback.  ``session_closed(session)``
    reports a transport disconnect.
    """

    def __init__(
        self,
        options: Optional[ServiceOptions] = None,
        *,
        cache=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.options = options or ServiceOptions()
        self.clock = clock
        self.store = result_cache.resolve_cache(cache)
        self._lock = threading.RLock()
        self.jobs: dict[str, Job] = {}
        self.workers: dict[str, WorkerState] = {}
        self.leases: dict[str, Lease] = {}
        self._job_seq = 0
        self._lease_seq = 0
        self._worker_seq = 0
        self._last_worker_seen: Optional[float] = None
        #: service-level counters surfaced by ``info``.
        self.stats = {
            "bad_messages": 0,
            "stale_results": 0,
            "leases_expired": 0,
            "workers_lost": 0,
            "fallback_runs": 0,
        }

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        """One message in, one reply out; never raises."""
        with self._lock:
            try:
                handler = getattr(self, f"_on_{msg.get('type')}", None)
                if handler is None:
                    self.stats["bad_messages"] += 1
                    return {"type": "error", "error": f"unknown message type {msg.get('type')!r}"}
                return handler(msg, session)
            except Exception as exc:  # a bad message must not kill the server
                self.stats["bad_messages"] += 1
                return {"type": "error", "error": f"{type(exc).__name__}: {exc}"}

    def _on_hello(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        role = msg.get("role", "client")
        reply: dict[str, Any] = {"type": "welcome", "protocol": PROTOCOL_VERSION}
        if role == "worker":
            now = self.clock()
            self._worker_seq += 1
            requested = str(msg.get("name") or f"worker-{self._worker_seq}")
            worker_id = requested
            while worker_id in self.workers:
                worker_id = f"{requested}~{self._worker_seq}"
                self._worker_seq += 1
            self.workers[worker_id] = WorkerState(worker_id, last_seen=now)
            self._last_worker_seen = now
            session["worker_id"] = worker_id
            reply["worker_id"] = worker_id
            reply["heartbeat_interval"] = self.options.heartbeat_interval
        else:
            session["role"] = "client"
        return reply

    def _touch_worker(self, session: dict[str, Any]) -> Optional[WorkerState]:
        """The session's worker record, resurrected if liveness reaped it."""
        worker_id = session.get("worker_id")
        if worker_id is None:
            return None
        now = self.clock()
        worker = self.workers.get(worker_id)
        if worker is None:
            # Declared dead by the liveness check but the socket lives on:
            # re-register.  Its old leases were already re-queued; any
            # results it still delivers for them are counted stale.
            worker = WorkerState(worker_id, last_seen=now)
            self.workers[worker_id] = worker
        worker.last_seen = now
        self._last_worker_seen = now
        return worker

    def _on_request(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        worker = self._touch_worker(session)
        if worker is None:
            return {"type": "error", "error": "send hello with role=worker first"}
        now = self.clock()
        if worker.quarantined(now):
            return {
                "type": "idle",
                "backoff": min(worker.quarantined_until - now, 4 * self.options.idle_backoff),
                "quarantined": True,
            }
        for job in self.jobs.values():
            if job.finished or job.fallback_active:
                continue
            self._promote_delayed(job, now)
            if not job.pending:
                continue
            index, attempt = job.pending.pop(0)
            self._lease_seq += 1
            lease = Lease(
                lease_id=f"lease-{self._lease_seq:06d}",
                job_id=job.job_id,
                index=index,
                attempt=attempt,
                worker_id=worker.worker_id,
                deadline=now + self.options.lease_seconds,
            )
            self.leases[lease.lease_id] = lease
            job.leased[index] = lease.lease_id
            worker.leases.add(lease.lease_id)
            point = job.points[index]
            return {
                "type": "lease",
                "lease_id": lease.lease_id,
                "job_id": job.job_id,
                "index": index,
                "attempt": attempt,
                "config": job.base,
                "overrides": point["overrides"],
                "kwargs": point["kwargs"],
                "seed": point["seed"],
                "runner": job.runner_spec,
                "deadline_seconds": self.options.lease_seconds,
            }
        return {"type": "idle", "backoff": self.options.idle_backoff}

    def _on_heartbeat(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        worker = self._touch_worker(session)
        if worker is None:
            return {"type": "error", "error": "send hello with role=worker first"}
        lease_id = msg.get("lease_id")
        return {"type": "ok", "known": lease_id is None or lease_id in self.leases}

    def _on_result(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        worker = self._touch_worker(session)
        lease_id = msg.get("lease_id")
        record = msg.get("record")
        if not isinstance(record, dict):
            self.stats["bad_messages"] += 1
            return {"type": "error", "error": "result carries no record object"}
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            # Expired, re-assigned, or duplicated: the re-leased run's
            # record is authoritative (and bit-identical anyway) — drop it.
            self.stats["stale_results"] += 1
            job = self.jobs.get(str(msg.get("job_id")))
            if job is not None:
                job.health.stale_results += 1
            return {"type": "stale"}
        job = self.jobs[lease.job_id]
        job.leased.pop(lease.index, None)
        if worker is not None:
            worker.leases.discard(lease.lease_id)
            worker.completed += 1
            worker.consecutive_failures = 0
        self._finish_or_retry(job, lease.index, lease.attempt, record)
        return {"type": "ok"}

    def _on_submit(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        base = msg.get("base")
        points = msg.get("points")
        spec = msg.get("runner")
        if not isinstance(base, dict) or not isinstance(points, list) or not isinstance(spec, dict):
            self.stats["bad_messages"] += 1
            return {"type": "error", "error": "submit needs base, points, and runner objects"}
        try:
            base_cfg = NetworkConfig(**base)
        except Exception as exc:
            return {"type": "error", "error": f"base config invalid: {type(exc).__name__}: {exc}"}
        if importable_name(spec) is None:
            return {
                "type": "error",
                "error": "runner is not importable by dotted name: remote sweeps need a "
                "module-level runner (or functools.partial over one with keyword "
                "bindings only)",
            }
        for p in points:
            if not isinstance(p, dict) or not {"index", "overrides", "kwargs", "seed"} <= set(p):
                self.stats["bad_messages"] += 1
                return {"type": "error", "error": "each point needs index, overrides, kwargs, seed"}
        options = msg.get("options") or {}
        max_retries = int(options.get("max_retries", 2))
        retry_backoff = float(options.get("retry_backoff", 0.25))
        self._job_seq += 1
        job_id = f"job-{self._job_seq:04d}"
        # Jitter is seeded from the sweep's base seed so a chaos run's retry
        # timeline reproduces; ``seed_jitter: false`` opts back out.
        if options.get("seed_jitter", True):
            policy = RetryPolicy.seeded(
                base_cfg.seed, job_id, max_retries=max_retries, backoff=retry_backoff
            )
        else:
            policy = RetryPolicy(max_retries=max_retries, backoff=retry_backoff)
        job = Job(job_id, base, points, spec, policy, label=str(msg.get("label") or ""))
        job.created = self.clock()
        self.jobs[job_id] = job
        cache_hits = self._prefill_from_cache(job, base_cfg, spec)
        session["role"] = "client"
        return {
            "type": "submitted",
            "job_id": job_id,
            "total": len(job.points),
            "cache_hits": cache_hits,
        }

    def _prefill_from_cache(
        self, job: Job, base_cfg: NetworkConfig, spec: Mapping[str, Any]
    ) -> int:
        """Serve cache hits at submit time; remember keys for write-back."""
        if self.store is None:
            return 0
        salt = result_cache.cache_salt()
        dotted, runner_kwargs = result_cache.provenance(spec)
        hits = 0
        still_pending: list[tuple[int, int]] = []
        for index, attempt in job.pending:
            point = job.points[index]
            try:
                cfg_dict = asdict(
                    base_cfg.with_(**{**point["overrides"], "seed": point["seed"]})
                )
            except Exception:
                # An invalid point cannot be cached; the worker will produce
                # the same deterministic failed record a local sweep would.
                still_pending.append((index, attempt))
                continue
            key = result_cache.point_key(cfg_dict, point["kwargs"], spec, salt=salt)
            hit = self.store.get(key)
            if hit is not None:
                hits += 1
                job.health.cache_hits += 1
                self._emit(job, index, hit)
                continue
            job.health.cache_misses += 1
            job.cache_keys[index] = key
            job.cache_meta[index] = {
                "context": "service",
                "runner_spec": {"runner": dotted} if dotted else {},
                "runner_kwargs": runner_kwargs,
                "config": cfg_dict,
                "kwargs": dict(point["kwargs"]),
                "coords": sorted({**point["overrides"], **point["kwargs"]}),
            }
            still_pending.append((index, attempt))
        job.pending = still_pending
        self.store.flush_stats()
        return hits

    def _on_poll(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        job = self.jobs.get(str(msg.get("job_id")))
        if job is None:
            return {"type": "error", "error": f"unknown job {msg.get('job_id')!r}"}
        since = int(msg.get("since", 0))
        records = [
            {"index": index, "record": job.results[index]}
            for index in job.completion_order[since:]
        ]
        return {
            "type": "status",
            "job_id": job.job_id,
            "total": len(job.points),
            "done": len(job.results),
            "finished": job.finished,
            "records": records,
            "health": asdict(job.health),
            "summary": job.health.summary(),
        }

    def _on_info(self, msg: Mapping[str, Any], session: dict[str, Any]) -> dict[str, Any]:
        now = self.clock()
        return {
            "type": "service",
            "protocol": PROTOCOL_VERSION,
            "workers": [
                {
                    "worker_id": w.worker_id,
                    "age_seconds": now - w.last_seen,
                    "leases": len(w.leases),
                    "completed": w.completed,
                    "quarantined": w.quarantined(now),
                }
                for w in self.workers.values()
            ],
            "jobs": [
                {
                    "job_id": j.job_id,
                    "label": j.label,
                    "total": len(j.points),
                    "done": len(j.results),
                    "finished": j.finished,
                    "fallback": j.fallback_active,
                    "summary": j.health.summary(),
                }
                for j in self.jobs.values()
            ],
            "stats": dict(self.stats),
        }

    # ------------------------------------------------------------------
    # completion, retry, and requeue
    # ------------------------------------------------------------------

    def _finish_or_retry(
        self, job: Job, index: int, attempt: int, record: dict[str, Any]
    ) -> None:
        kind = record.get("error_kind")
        if record.get("failed") and job.policy.should_retry(kind, attempt):
            job.health.retried += 1
            ready = self.clock() + job.policy.delay(attempt + 1)
            job.delayed.append((ready, index, attempt + 1))
        else:
            self._emit(job, index, record)

    def _emit(self, job: Job, index: int, record: dict[str, Any]) -> None:
        """Record a final result; mirrors ``run_sweep``'s health bookkeeping."""
        if index in job.results:  # pragma: no cover - double-emit guard
            return
        job.results[index] = record
        job.completion_order.append(index)
        if record.get("failed"):
            job.health.failed += 1
            kind = record.get("error_kind")
            if kind == "timeout":
                job.health.timed_out += 1
            elif kind == "stalled":
                job.health.stalled += 1
        else:
            job.health.ok += 1
            if self.store is not None:
                key = job.cache_keys.pop(index, None)
                if key is not None:
                    self.store.put(key, record, job.cache_meta.pop(index, None))
                    self.store.flush_stats()

    def _requeue_lease(self, lease: Lease, kind: str) -> None:
        """Put an expired/orphaned lease's point back in its job's queue."""
        self.leases.pop(lease.lease_id, None)
        job = self.jobs.get(lease.job_id)
        if job is None:  # pragma: no cover - job retired mid-flight
            return
        job.leased.pop(lease.index, None)
        if job.policy.should_retry(kind, lease.attempt):
            job.health.retried += 1
            ready = self.clock() + job.policy.delay(lease.attempt + 1)
            job.delayed.append((ready, lease.index, lease.attempt + 1))
        else:
            point = job.sweep_point(lease.index)
            reason = {
                "lease_expired": "lease expired: worker presumed lost",
                "worker_death": "worker died or went silent",
                "disconnect": "worker disconnected",
            }.get(kind, kind)
            self._emit(
                job,
                lease.index,
                _failed_record(point, f"{reason} (attempt {lease.attempt + 1})", kind=kind),
            )

    def _promote_delayed(self, job: Job, now: float) -> None:
        ready = [e for e in job.delayed if e[0] <= now]
        if ready:
            job.delayed = [e for e in job.delayed if e[0] > now]
            job.pending.extend((index, attempt) for _, index, attempt in ready)

    def _worker_lost(self, worker: WorkerState, kind: str) -> None:
        """Requeue everything a dead/disconnected worker held; drop it."""
        self.stats["workers_lost"] += 1
        affected: set[str] = set()
        for lease_id in list(worker.leases):
            lease = self.leases.get(lease_id)
            if lease is not None:
                affected.add(lease.job_id)
                self._requeue_lease(lease, kind)
        worker.leases.clear()
        self.workers.pop(worker.worker_id, None)
        for job_id in affected:
            self.jobs[job_id].health.worker_deaths += 1

    def session_closed(self, session: dict[str, Any]) -> None:
        """Transport-level disconnect: reap the session's worker, if any."""
        with self._lock:
            worker = self.workers.get(session.get("worker_id", ""))
            if worker is not None:
                self._worker_lost(worker, "disconnect")

    # ------------------------------------------------------------------
    # time-based transitions
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance lease expiry, liveness, backoff promotion, and fallback."""
        with self._lock:
            now = self.clock()
            for lease in [l for l in self.leases.values() if now > l.deadline]:
                self.stats["leases_expired"] += 1
                worker = self.workers.get(lease.worker_id)
                if worker is not None:
                    worker.leases.discard(lease.lease_id)
                    worker.consecutive_failures += 1
                    if (
                        worker.consecutive_failures >= self.options.quarantine_after
                        and not worker.quarantined(now)
                    ):
                        worker.quarantined_until = now + self.options.quarantine_seconds
                        worker.consecutive_failures = 0
                        job = self.jobs.get(lease.job_id)
                        if job is not None:
                            job.health.quarantined += 1
                self._requeue_lease(lease, "lease_expired")
            for worker in [
                w
                for w in self.workers.values()
                if now - w.last_seen > self.options.heartbeat_timeout
            ]:
                self._worker_lost(worker, "worker_death")
            for job in self.jobs.values():
                self._promote_delayed(job, now)
                self._maybe_fallback(job, now)

    def _maybe_fallback(self, job: Job, now: float) -> None:
        """Start the local executor if the fleet has abandoned this job."""
        if (
            self.options.fallback_after is None
            or job.finished
            or job.fallback_active
            or self.workers
            or not (job.pending or job.delayed or job.leased)
        ):
            return
        quiet_since = max(job.created, self._last_worker_seen or job.created)
        if now - quiet_since < self.options.fallback_after:
            return
        job.fallback_active = True
        self.stats["fallback_runs"] += 1
        self._start_fallback(job)

    def _start_fallback(self, job: Job) -> None:  # overridable for tests
        thread = threading.Thread(
            target=self._run_fallback, args=(job,), name=f"fallback-{job.job_id}", daemon=True
        )
        thread.start()

    def _run_fallback(self, job: Job) -> None:
        """Execute a job's remaining points on the local machine.

        Runs until the job finishes or a worker (re)connects; points are
        drained from the queues under the lock, so a worker arriving
        mid-batch can only race for *newly* re-queued points, never the
        ones already executing here.  Records are bit-identical either
        way (derived seeds), and stale-completion handling covers the
        overlap.
        """
        try:
            runner = resolve_runner(job.runner_spec)
            base = NetworkConfig(**job.base)
        except Exception as exc:
            with self._lock:
                for index, attempt in self._drain_queues(job):
                    self._emit(
                        job,
                        index,
                        _failed_record(
                            job.sweep_point(index),
                            f"fallback cannot run: {type(exc).__name__}: {exc}",
                        ),
                    )
                job.fallback_active = False
            return
        while True:
            with self._lock:
                if job.finished or self.workers:
                    job.fallback_active = False
                    return
                batch = self._drain_queues(job)
            if not batch:
                time.sleep(0.05)
                continue
            points = [job.sweep_point(index) for index, _ in batch]
            attempts = [attempt for _, attempt in batch]

            def emit(point: SweepPoint, record: dict[str, Any]) -> None:
                with self._lock:
                    self._emit(job, point.index, record)

            if self.options.fallback_workers <= 1:
                for point, attempt in zip(points, attempts):
                    record = _execute_point(runner, base, point)
                    while job.policy.should_retry(record.get("error_kind"), attempt):
                        attempt += 1
                        with self._lock:
                            job.health.retried += 1
                        time.sleep(job.policy.delay(attempt))
                        record = _execute_point(runner, base, point)
                    emit(point, record)
            else:
                _run_pool(
                    points,
                    runner,
                    base,
                    self.options.fallback_workers,
                    None,
                    emit,
                    job.health,
                    job.policy,
                    pending_attempts=attempts,
                )

    def _drain_queues(self, job: Job) -> list[tuple[int, int]]:
        """Take every pending and delayed point (backoffs included); locked."""
        batch = list(job.pending)
        batch.extend((index, attempt) for _, index, attempt in job.delayed)
        job.pending = []
        job.delayed = []
        return batch


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch to the controller, reply."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        controller: Controller = self.server.controller  # type: ignore[attr-defined]
        session: dict[str, Any] = {}
        try:
            while True:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    # Unbounded frame: reply once and drop the connection.
                    controller.stats["bad_messages"] += 1
                    self.wfile.write(encode({"type": "error", "error": "frame too large"}))
                    break
                try:
                    msg = decode(line)
                except ProtocolError as exc:
                    controller.stats["bad_messages"] += 1
                    self.wfile.write(encode({"type": "error", "error": str(exc)}))
                    continue
                self.wfile.write(encode(controller.handle(msg, session)))
        except (ConnectionError, OSError):
            pass
        finally:
            controller.session_closed(session)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ControllerServer:
    """A :class:`Controller` behind a threading TCP server + monitor thread.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports the
    bound ``(host, port)``.  The monitor thread calls
    :meth:`Controller.tick` every ``tick_interval`` seconds, driving lease
    expiry, liveness, and fallback in real time.
    """

    def __init__(
        self,
        controller: Optional[Controller] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval: float = 0.05,
    ) -> None:
        self.controller = controller or Controller()
        self.tick_interval = tick_interval
        self._server = _Server((host, port), _Handler)
        self._server.controller = self.controller  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ControllerServer":
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": self.tick_interval},
            name="service-accept",
            daemon=True,
        )
        self._serve_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="service-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def _monitor(self) -> None:
        while not self._stop.wait(self.tick_interval):
            self.controller.tick()

    def stop(self) -> None:
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)

    def serve_forever(self) -> None:
        """Run in the foreground until interrupted (the CLI entry point)."""
        self.start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ControllerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
