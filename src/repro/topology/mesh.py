"""k-ary n-cube meshes and the shared coordinate machinery.

:class:`KAryNCube` implements the coordinate arithmetic shared by the mesh
(no wraparound) and the torus/ring (wraparound, see
:mod:`repro.topology.torus`).  The paper's "8-ary 2-cube (2D mesh)" is
``Mesh(k=8, n=2)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Channel, Topology

__all__ = ["KAryNCube", "Mesh"]


class KAryNCube(Topology):
    """Common base for k-ary n-cube networks (radix ``k``, dimension ``n``).

    ``wrap`` selects torus (True) or mesh (False) edge behaviour;
    ``channel_delay`` is the per-link latency (folded tori double it).
    """

    name = "karyncube"

    def __init__(self, k: int, n: int, *, wrap: bool, channel_delay: int = 1):
        if k < 2:
            raise ValueError("k must be >= 2")
        if n < 1:
            raise ValueError("n must be >= 1")
        if channel_delay < 1:
            raise ValueError("channel_delay must be >= 1")
        self.k = k
        self.n = n
        self.wrap = wrap
        self.channel_delay = channel_delay
        self._num_nodes = k**n
        # Precompute coordinate tables: coords[node] -> tuple.
        self._coords: list[tuple[int, ...]] = []
        for node in range(self._num_nodes):
            c, rem = [], node
            for _ in range(n):
                c.append(rem % k)
                rem //= k
            self._coords.append(tuple(c))
        # Precompute channels, indexed [node][port].
        self._channels: list[list[Optional[Channel]]] = [
            [self._build_channel(node, port) for port in range(2 * n)]
            for node in range(self._num_nodes)
        ]

    # -- construction -----------------------------------------------------
    def _build_channel(self, node: int, port: int) -> Optional[Channel]:
        dim, positive = divmod(port, 2)
        positive = positive == 0
        c = list(self._coords[node])
        if positive:
            nxt = c[dim] + 1
            if nxt == self.k:
                if not self.wrap:
                    return None
                nxt = 0
        else:
            nxt = c[dim] - 1
            if nxt < 0:
                if not self.wrap:
                    return None
                nxt = self.k - 1
        c[dim] = nxt
        dst = self.node_at(c)
        # A +dim channel lands on the -dim input port of the neighbour and
        # vice versa (the neighbour sees the flit arriving from "below").
        in_port = 2 * dim + (1 if positive else 0)
        return Channel(node, port, dst, in_port, self.channel_delay)

    # -- Topology API ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_dims(self) -> int:
        return self.n

    def channel(self, node: int, out_port: int) -> Optional[Channel]:
        return self._channels[node][out_port]

    def coords(self, node: int) -> tuple[int, ...]:
        return self._coords[node]

    def node_at(self, coords: Sequence[int]) -> int:
        node = 0
        for d in reversed(range(self.n)):
            node = node * self.k + (coords[d] % self.k)
        return node

    def dim_distance(self, a: int, b: int, dim: int) -> int:
        """Minimal per-dimension distance from coord a to b."""
        delta = abs(self._coords[b][dim] - self._coords[a][dim])
        if self.wrap:
            return min(delta, self.k - delta)
        return delta

    def min_hops(self, src: int, dst: int) -> int:
        return sum(self.dim_distance(src, dst, d) for d in range(self.n))

    def direction(self, src: int, dst: int, dim: int) -> int:
        """Preferred travel direction in ``dim``: +1, -1 or 0 (aligned).

        On a torus, ties at distance k/2 break toward the positive direction
        so routing stays deterministic.
        """
        a = self._coords[src][dim]
        b = self._coords[dst][dim]
        if a == b:
            return 0
        if not self.wrap:
            return 1 if b > a else -1
        fwd = (b - a) % self.k
        bwd = (a - b) % self.k
        if fwd <= bwd:
            return 1
        return -1


class Mesh(KAryNCube):
    """k-ary n-cube mesh (no wraparound links); the paper's baseline."""

    name = "mesh"

    def __init__(self, k: int = 8, n: int = 2, *, channel_delay: int = 1):
        super().__init__(k, n, wrap=False, channel_delay=channel_delay)
