"""Folded torus topology.

The paper (§III-C) assumes a *folded* torus: the physical folding equalizes
link lengths but doubles the per-channel delay relative to the mesh, which is
why the torus shows slightly higher zero-load latency than the mesh despite
its lower hop count.  ``channel_delay_multiplier`` defaults to 2 to match.
"""

from __future__ import annotations

from .mesh import KAryNCube

__all__ = ["Torus"]


class Torus(KAryNCube):
    """k-ary n-cube torus with wraparound links (folded layout by default)."""

    name = "torus"

    def __init__(
        self,
        k: int = 8,
        n: int = 2,
        *,
        base_channel_delay: int = 1,
        channel_delay_multiplier: int = 2,
    ):
        super().__init__(
            k,
            n,
            wrap=True,
            channel_delay=base_channel_delay * channel_delay_multiplier,
        )

    def dateline_crossing(self, node: int, out_port: int) -> bool:
        """True if the channel out of ``node`` via ``out_port`` crosses the dateline.

        The dateline of every dimension sits on the wraparound edge: a hop
        from coordinate k-1 to 0 (positive direction) or 0 to k-1 (negative).
        Packets that have crossed must switch to the high VC class to break
        the channel-dependency cycle (Dally's dateline scheme).
        """
        dim, rem = divmod(out_port, 2)
        positive = rem == 0
        coord = self.coords(node)[dim]
        if positive:
            return coord == self.k - 1
        return coord == 0
