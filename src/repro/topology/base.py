"""Topology abstraction.

A topology defines the routers, the directed channels between them, and the
coordinate system routing algorithms reason about.  Channels are addressed by
*output port index* at the upstream router; each network output port maps to
exactly one (downstream router, downstream input port) pair.

Port numbering convention for an ``n``-dimensional topology:

* ports ``2*d``   — positive direction in dimension ``d``
* ports ``2*d+1`` — negative direction in dimension ``d``
* port  ``2*n``   — injection (as an input port) / ejection (as an output
  port) at the local node.

A port that does not exist (e.g. the +x port of the right edge of a mesh) has
no channel; :meth:`Topology.channel` returns ``None`` for it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional, Sequence

__all__ = ["Channel", "Topology"]


class Channel:
    """A directed link: upstream (router, out_port) → downstream (router, in_port)."""

    __slots__ = ("src", "out_port", "dst", "in_port", "delay")

    def __init__(self, src: int, out_port: int, dst: int, in_port: int, delay: int):
        self.src = src
        self.out_port = out_port
        self.dst = dst
        self.in_port = in_port
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.src}:{self.out_port} -> {self.dst}:{self.in_port},"
            f" delay={self.delay})"
        )


class Topology(ABC):
    """Abstract base: a set of routers joined by directed channels."""

    #: subclass name used by the registry
    name: str = "abstract"

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of routers (== number of terminal nodes; concentration 1)."""

    @property
    @abstractmethod
    def num_dims(self) -> int:
        """Dimensionality ``n`` (determines the port layout)."""

    @property
    def num_network_ports(self) -> int:
        """Network (non-local) ports per router."""
        return 2 * self.num_dims

    @property
    def local_port(self) -> int:
        """Index of the injection/ejection port."""
        return 2 * self.num_dims

    @property
    def ports_per_router(self) -> int:
        """Total ports per router including the local port."""
        return self.num_network_ports + 1

    @abstractmethod
    def channel(self, node: int, out_port: int) -> Optional[Channel]:
        """The channel leaving ``node`` through ``out_port`` (None if absent)."""

    @abstractmethod
    def coords(self, node: int) -> tuple[int, ...]:
        """Coordinate vector of ``node``."""

    @abstractmethod
    def node_at(self, coords: Sequence[int]) -> int:
        """Node id at a coordinate vector."""

    @abstractmethod
    def min_hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""

    def channels(self) -> Iterator[Channel]:
        """Iterate over every channel in the network."""
        for node in range(self.num_nodes):
            for port in range(self.num_network_ports):
                ch = self.channel(node, port)
                if ch is not None:
                    yield ch

    def average_min_hops(self) -> float:
        """Average minimal hop count over all src != dst pairs."""
        n = self.num_nodes
        total = sum(
            self.min_hops(s, d) for s in range(n) for d in range(n) if s != d
        )
        return total / (n * (n - 1))

    def validate(self) -> None:
        """Sanity-check channel wiring; raises AssertionError on a bad build."""
        seen_inputs: set[tuple[int, int]] = set()
        for ch in self.channels():
            assert 0 <= ch.src < self.num_nodes
            assert 0 <= ch.dst < self.num_nodes
            assert ch.delay >= 1
            key = (ch.dst, ch.in_port)
            assert key not in seen_inputs, f"two channels feed input {key}"
            seen_inputs.add(key)
