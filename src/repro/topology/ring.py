"""Bidirectional ring topology.

A ring is a k-ary 1-cube torus.  Like the torus it is drawn folded on chip,
so the default channel delay is doubled; pass ``channel_delay_multiplier=1``
for an unfolded ring.  The 64-node ring is the low-bisection extreme of the
paper's topology comparison (Fig. 6).
"""

from __future__ import annotations

from .torus import Torus

__all__ = ["Ring"]


class Ring(Torus):
    """Bidirectional ring on ``num_nodes`` nodes (k-ary 1-cube)."""

    name = "ring"

    def __init__(
        self,
        num_nodes: int = 64,
        *,
        base_channel_delay: int = 1,
        channel_delay_multiplier: int = 2,
    ):
        super().__init__(
            k=num_nodes,
            n=1,
            base_channel_delay=base_channel_delay,
            channel_delay_multiplier=channel_delay_multiplier,
        )
