"""Topology registry: build a topology from a :class:`NetworkConfig`."""

from __future__ import annotations

from ..config import NetworkConfig
from .base import Topology
from .ideal import Ideal
from .mesh import Mesh
from .ring import Ring
from .torus import Torus

__all__ = ["build_topology"]


def build_topology(config: NetworkConfig) -> Topology:
    """Construct the topology named by ``config.topology``.

    ``mesh``/``torus`` use (k, n); ``ring`` interprets ``k**n`` as the node
    count so that ``config.num_nodes`` is consistent across topologies (the
    paper compares a 64-node mesh, torus and ring); ``ideal`` likewise.
    """
    if config.topology == "mesh":
        return Mesh(config.k, config.n, channel_delay=config.link_delay)
    if config.topology == "torus":
        return Torus(config.k, config.n, base_channel_delay=config.link_delay)
    if config.topology == "ring":
        return Ring(config.k**config.n, base_channel_delay=config.link_delay)
    if config.topology == "ideal":
        return Ideal(config.k**config.n)
    raise ValueError(f"unknown topology {config.topology!r}")
