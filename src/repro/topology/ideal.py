"""Ideal (fully connected, single-cycle) topology.

The paper's NAR definition (§IV-C1, footnote 7) is relative to "a fully
connected network with infinite bandwidth between the nodes and single cycle
latency".  This topology backs :class:`repro.network.ideal.IdealNetwork`,
which bypasses the router pipeline entirely; it still exposes the Topology
interface so traffic patterns and analysis code can treat it uniformly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Channel, Topology

__all__ = ["Ideal"]


class Ideal(Topology):
    """Fully connected single-cycle network of ``num_nodes`` nodes."""

    name = "ideal"

    def __init__(self, num_nodes: int = 64, *, latency: int = 1):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self._num_nodes = num_nodes
        self.latency = latency

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_dims(self) -> int:
        # One "dimension" with a direct port to every other node; the port
        # layout of k-ary cubes does not apply, so routers are never built on
        # this topology (IdealNetwork bypasses them).
        return 1

    def channel(self, node: int, out_port: int) -> Optional[Channel]:
        return None

    def coords(self, node: int) -> tuple[int, ...]:
        return (node,)

    def node_at(self, coords: Sequence[int]) -> int:
        return int(coords[0])

    def min_hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1
