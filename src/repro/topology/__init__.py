"""Network topologies: mesh, folded torus, ring, and the ideal network."""

from .base import Channel, Topology
from .ideal import Ideal
from .mesh import KAryNCube, Mesh
from .registry import build_topology
from .ring import Ring
from .torus import Torus

__all__ = [
    "Channel",
    "Topology",
    "KAryNCube",
    "Mesh",
    "Torus",
    "Ring",
    "Ideal",
    "build_topology",
]
