"""Deterministic random-number discipline for the whole framework.

Every stochastic component of the framework (traffic patterns, injection
processes, adaptive tie-breaking, synthetic benchmark streams) receives its
own :class:`numpy.random.Generator` derived from a single user-supplied seed.
No module touches global RNG state, so a simulation with a given seed is
bit-reproducible regardless of what else ran in the process.

Streams are split with :func:`spawn`, which hashes a parent seed together
with a string label.  Labels make the derivation self-documenting: the
injection stream of node 12 is always ``spawn(seed, "inject", 12)`` and never
collides with, say, the VC tie-break stream of router 12.
"""

from __future__ import annotations

import zlib
from typing import Mapping

import numpy as np

__all__ = ["spawn", "make_generator", "python_randbits", "sweep_seed"]

_MASK64 = (1 << 64) - 1


def _label_hash(*parts: object) -> int:
    """Stable 64-bit hash of a sequence of labels (ints / strings)."""
    data = "\x1f".join(str(p) for p in parts).encode("utf-8")
    # crc32 twice with different salts to get 64 stable bits; zlib.crc32 is
    # stable across Python versions, unlike hash().
    lo = zlib.crc32(data)
    hi = zlib.crc32(data + b"\x00salt")
    return ((hi << 32) | lo) & _MASK64


def spawn(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a label path.

    The derivation is deterministic and collision-resistant for practical
    purposes (64-bit space, structured labels).

    >>> spawn(1, "inject", 3) == spawn(1, "inject", 3)
    True
    >>> spawn(1, "inject", 3) != spawn(1, "inject", 4)
    True
    """
    return (int(seed) * 0x9E3779B97F4A7C15 + _label_hash(*labels)) & _MASK64


def make_generator(seed: int, *labels: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the stream named by ``labels``."""
    return np.random.default_rng(spawn(seed, *labels))


def sweep_seed(seed: int, point: Mapping[str, object]) -> int:
    """Child seed for one design-space sweep point.

    The derivation depends only on the point's coordinates (axis name to
    value), never on enumeration order, worker assignment, or which other
    points run in the same process — so a point's stochastic streams are
    identical whether it runs serially, in a process pool, or after a
    checkpoint/resume.  Axis names are sorted before hashing, making two
    mappings with the same items but different insertion order equivalent.

    >>> sweep_seed(1, {"tr": 2, "m": 4}) == sweep_seed(1, {"m": 4, "tr": 2})
    True
    >>> sweep_seed(1, {"tr": 2}) != sweep_seed(1, {"tr": 4})
    True
    """
    labels: list[object] = []
    for name in sorted(point):
        labels.append(name)
        labels.append(repr(point[name]))
    return spawn(seed, "sweep-point", *labels)


def python_randbits(gen: np.random.Generator, bits: int = 30) -> int:
    """Draw an integer with ``bits`` random bits from a numpy generator.

    Handy when a plain Python integer is needed in a hot loop.
    """
    return int(gen.integers(0, 1 << bits))
