"""repro — On-Chip Network Evaluation Framework (SC 2010 reproduction).

A production-quality reimplementation of Kim, Heo, Lee, Huh & Kim,
"On-Chip Network Evaluation Framework" (SC 2010): a cycle-level NoC
simulator, open-loop and closed-loop (batch) measurement harnesses, the
paper's enhanced injection / reply / OS-traffic models, an execution-driven
CMP substrate, and the correlation methodology tying them together.

Quick taste::

    from repro import NetworkConfig, OpenLoopSimulator, BatchSimulator

    cfg = NetworkConfig(k=8, n=2)          # 8x8 mesh, Table I baseline
    ol = OpenLoopSimulator(cfg)
    print(ol.run(injection_rate=0.1).avg_latency)

    cl = BatchSimulator(cfg, batch_size=100, max_outstanding=4)
    print(cl.run().runtime)
"""

from .classes import TrafficClass, parse_classes
from .config import CmpConfig, NetworkConfig
from .core.closedloop import BatchResult, BatchSimulator
from .core.engine import Phase, SimulationEngine
from .core.openloop import OpenLoopResult, OpenLoopSimulator
from .core.probes import ProbeSet, build_probes
from .core.resilience import (
    FaultPlan,
    SimulationStalled,
    UnreachableDestination,
    Watchdog,
)
from .network import IdealNetwork, Network, NetworkLike, Packet

__all__ = [
    "NetworkConfig",
    "CmpConfig",
    "TrafficClass",
    "parse_classes",
    "Network",
    "IdealNetwork",
    "NetworkLike",
    "Packet",
    "OpenLoopSimulator",
    "OpenLoopResult",
    "BatchSimulator",
    "BatchResult",
    "SimulationEngine",
    "Phase",
    "ProbeSet",
    "build_probes",
    "FaultPlan",
    "Watchdog",
    "SimulationStalled",
    "UnreachableDestination",
    "__version__",
]


def _detect_version() -> str:
    """Single-source the version from packaging metadata.

    Installed (even ``pip install -e``): ``importlib.metadata`` has it.
    Run straight from a source checkout via ``PYTHONPATH=src``: fall back
    to parsing the adjacent ``pyproject.toml`` so the two never drift.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        pass
    except Exception:  # pragma: no cover - metadata backend quirks
        pass
    try:
        import pathlib
        import re

        pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
        # A targeted regex instead of a TOML parser: tomllib is 3.11+ and
        # this package supports 3.10.
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(encoding="utf-8"), re.M
        )
        if match:
            return match.group(1)
    except OSError:  # pragma: no cover - no checkout layout either
        pass
    return "0.0.0+unknown"


__version__ = _detect_version()
