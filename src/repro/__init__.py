"""repro — On-Chip Network Evaluation Framework (SC 2010 reproduction).

A production-quality reimplementation of Kim, Heo, Lee, Huh & Kim,
"On-Chip Network Evaluation Framework" (SC 2010): a cycle-level NoC
simulator, open-loop and closed-loop (batch) measurement harnesses, the
paper's enhanced injection / reply / OS-traffic models, an execution-driven
CMP substrate, and the correlation methodology tying them together.

Quick taste::

    from repro import NetworkConfig, OpenLoopSimulator, BatchSimulator

    cfg = NetworkConfig(k=8, n=2)          # 8x8 mesh, Table I baseline
    ol = OpenLoopSimulator(cfg)
    print(ol.run(injection_rate=0.1).avg_latency)

    cl = BatchSimulator(cfg, batch_size=100, max_outstanding=4)
    print(cl.run().runtime)
"""

from .config import CmpConfig, NetworkConfig
from .core.closedloop import BatchResult, BatchSimulator
from .core.openloop import OpenLoopResult, OpenLoopSimulator
from .network import IdealNetwork, Network, Packet

__all__ = [
    "NetworkConfig",
    "CmpConfig",
    "Network",
    "IdealNetwork",
    "Packet",
    "OpenLoopSimulator",
    "OpenLoopResult",
    "BatchSimulator",
    "BatchResult",
]

__version__ = "1.0.0"
