"""Zero-cycle analytical surrogate: M/G/1 queueing over DOR channel loads.

The paper's ladder compares measurement methodologies by speed and accuracy
(closed-loop batch vs execution-driven, r ≈ 0.83→0.97).  This module adds
the missing zero-*cycle* rung in the spirit of "Analytical Performance
Models for NoCs with Multiple Priority Traffic Classes" (PAPERS.md): a
queueing-theoretic latency/saturation estimator that answers in
microseconds what the cycle-accurate backends answer in seconds.

The model, in three steps:

1. **Channel loads.**  Every (src, dst) pair of each class's exact traffic
   matrix (closed-form for uniform random and hotspot, the permutation
   table for the rest) is walked along its dimension-ordered route; the
   per-channel flit loads — ejection ports included — give the classic
   saturation bound ``λ_sat = capacity_factor / max_c load_c`` and the
   per-class mean hop count / path delay behind the zero-load latency
   ``T0 = Σ delay + H·tr + tr + (E[S] − 1)`` (the formula
   :meth:`~repro.core.openloop.OpenLoopSimulator.analytic_zero_load_latency`
   cross-checks against the simulator).
2. **Queueing delay.**  Each router hop is an M/G/1 queue at the
   bottleneck-normalized utilization ``ρ = λ / λ_sat`` with the configured
   packet-size distribution's ``E[S]``/``E[S²]``.  Under ``"priority"``
   arbitration the queue serves non-preemptive head-of-line priorities
   across the ``classes=`` registry — class *k* at priority level ``ℓ``
   waits ``W_k = R / ((1 − σ_above)(1 − σ_incl))`` where ``R`` is the mean
   residual service and ``σ`` cumulates utilization down the priority
   order, so high-priority latency stays flat while low-priority traffic
   saturates first, exactly the PR 7 measured separation.  The other
   arbiters (round-robin, age, weighted) are modelled as one FCFS
   Pollaczek–Khinchine queue shared by all classes.
3. **Assembly.**  ``T_k(λ) = T0_k + (H_k + 1)·W_k`` (the ``+1`` is the
   source queue — open-loop latency counts from packet creation), per-class
   throughput is a priority-ordered water-fill of the saturation capacity,
   and a class whose cumulative utilization reaches 1 reports
   ``saturated=True`` with infinite latency, mirroring the simulator's
   drain-failure convention.

Deliberate approximations (documented, not hidden): routes are modelled as
minimal DOR even under VAL/MA/ROMM; every hop sees the *bottleneck*
utilization (pessimistic mid-curve, exact at the knee, which is what sweep
steering needs); ``capacity_factor`` (default 0.85) derates the ideal bound
for finite-buffer flow control — the 8×8 mesh's theoretical 0.49 lands on
the simulator's measured ≈0.42 knee.

The estimator is exposed as ``backend="analytical"`` on
:class:`~repro.config.NetworkConfig` purely for symmetry: cycle drivers
reject it with :class:`~repro.network.base.BackendUnsupported` pointing
here, because a closed-form model has no cycles to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..classes import class_shares
from ..config import NetworkConfig
from ..network.base import BackendUnsupported
from ..routing.dor import dor_port
from ..topology.registry import build_topology
from ..traffic.patterns import HotSpot, PermutationPattern, UniformRandom
from ..traffic.registry import build_pattern

__all__ = [
    "AnalyticalModel",
    "AnalyticalEstimate",
    "ClassEstimate",
    "estimate",
    "estimate_curve",
    "sweep_record",
]

#: Fraction of the ideal channel capacity reachable before the simulator
#: saturates: finite VC buffers, credit round-trips and switch contention
#: cost roughly 15% of the bound (Dally & Towles §25.2 quote 60-90% for
#: real flow control; 0.85 matches this simulator's measured 8×8 knee).
DEFAULT_CAPACITY_FACTOR = 0.85


@dataclass(frozen=True)
class ClassEstimate:
    """One traffic class's share of an :class:`AnalyticalEstimate`."""

    name: str
    injection_rate: float
    avg_latency: float
    zero_load_latency: float
    avg_hops: float
    throughput: float
    utilization: float
    saturated: bool


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Model prediction at one offered load (flits/cycle/node)."""

    injection_rate: float
    avg_latency: float
    zero_load_latency: float
    avg_hops: float
    throughput: float
    utilization: float
    saturation_rate: float
    saturated: bool
    classes: tuple[ClassEstimate, ...]


def _pattern_matrix(config: NetworkConfig, name: str) -> np.ndarray:
    """Exact row-stochastic traffic matrix for pattern ``name``.

    Rows are sources, entries are the probability a packet from that source
    targets each destination.  Closed forms, never sampled: uniform random
    spreads ``1/(N−1)`` off-diagonal, hotspot mixes a uniform matrix with
    its hotspot column(s), and every permutation pattern is its one-hot
    table (fixed points — e.g. the transpose diagonal — keep their
    diagonal weight: such packets bypass the network via the local port).
    """
    pattern = build_pattern(config.with_(traffic=name))
    n = pattern.num_nodes
    if isinstance(pattern, PermutationPattern):
        matrix = np.zeros((n, n))
        matrix[np.arange(n), pattern.table] = 1.0
        return matrix
    uniform = (np.ones((n, n)) - np.eye(n)) / (n - 1)
    if isinstance(pattern, UniformRandom):
        return uniform
    if isinstance(pattern, HotSpot):
        hot = np.zeros((n, n))
        hot[:, list(pattern.hotspots)] = 1.0 / len(pattern.hotspots)
        return pattern.fraction * hot + (1.0 - pattern.fraction) * uniform
    raise BackendUnsupported(
        "analytical",
        f"traffic pattern {name!r}",
        "the queueing model needs a closed-form traffic matrix",
    )


def _path_stats(topo, matrix: np.ndarray) -> tuple[np.ndarray, float, float]:
    """(unit channel loads, mean hops, mean path channel delay) of ``matrix``.

    Loads are flits/cycle per channel at a unit (1 flit/cycle/node) offered
    load, indexed ``node·ports_per_router + out_port`` with the local port
    carrying ejection.  Means are per *packet* (matrix rows are
    row-stochastic, so dividing the weighted sum by N is exact).
    """
    n = topo.num_nodes
    ports = topo.ports_per_router
    load = np.zeros(n * ports)
    eject = topo.local_port
    mean_hops = 0.0
    mean_delay = 0.0
    if topo.name == "ideal":
        # Fully connected single-cycle fabric: no network channels, only
        # the per-node ejection port bounds throughput.
        for src in range(n):
            for dst in np.nonzero(matrix[src])[0]:
                if dst == src:
                    continue
                w = matrix[src, dst]
                load[int(dst) * ports + eject] += w
                mean_hops += w / n
                mean_delay += w * topo.latency / n
        return load, mean_hops, mean_delay
    for src in range(n):
        for dst in np.nonzero(matrix[src])[0]:
            dst = int(dst)
            if dst == src:
                continue
            w = float(matrix[src, dst])
            node, hops, delay = src, 0, 0
            while node != dst:
                port = dor_port(topo, node, dst)
                ch = topo.channel(node, port)
                load[node * ports + port] += w
                hops += 1
                delay += ch.delay
                node = ch.dst
            load[dst * ports + eject] += w
            mean_hops += w * hops / n
            mean_delay += w * delay / n
    return load, mean_hops, mean_delay


class AnalyticalModel:
    """Closed-form latency/throughput estimator for one configuration.

    Construction does all the routing work (one DOR walk per traffic-matrix
    pair); :meth:`estimate` is then pure arithmetic, microseconds per call,
    so a model instance can answer a whole rate sweep for the cost of one
    cycle-accurate warmup phase.
    """

    def __init__(
        self,
        config: NetworkConfig,
        *,
        capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
    ):
        if config.faults is not None:
            raise BackendUnsupported(
                "analytical",
                "fault plans",
                "the queueing model assumes a healthy network; simulate "
                "faulted configurations cycle-accurately",
            )
        if not 0.0 < capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        self.config = config
        self.capacity_factor = capacity_factor
        self.topology = build_topology(config)
        tr = config.router_delay
        mean_size = config.mean_packet_size
        self._mean_service = mean_size
        if config.packet_size == "single":
            self._service_sq = 1.0
        else:
            f = config.bimodal_long_fraction
            long = float(config.bimodal_long_size)
            self._service_sq = (1.0 - f) * 1.0 + f * long * long
        serialization = mean_size - 1.0
        self._shares = class_shares(config.classes)
        matrices: dict[str, tuple[np.ndarray, float, float]] = {}
        combined = np.zeros(self.topology.num_nodes * self.topology.ports_per_router)
        self._class_hops: list[float] = []
        self._class_t0: list[float] = []
        for cls, share in zip(config.classes, self._shares):
            name = cls.pattern or config.traffic
            if name not in matrices:
                matrices[name] = _path_stats(
                    self.topology, _pattern_matrix(config, name)
                )
            load, hops, delay = matrices[name]
            combined += share * load
            self._class_hops.append(hops)
            if self.topology.name == "ideal":
                # IdealNetwork bypasses the router pipeline entirely.
                self._class_t0.append(delay + serialization)
            else:
                self._class_t0.append(delay + hops * tr + tr + serialization)
        max_load = float(combined.max())
        #: offered flits/cycle/node at which the bottleneck channel saturates
        self.saturation_rate = (
            capacity_factor / max_load if max_load > 0 else float("inf")
        )

    # -- queueing ---------------------------------------------------------
    def _class_waits(self, rho: float) -> list[float]:
        """Per-class mean wait per queue at total utilization ``rho``.

        ``"priority"`` arbitration gets the non-preemptive HOL-priority
        M/G/1 (classes grouped by priority level, FCFS within a level);
        everything else shares one Pollaczek–Khinchine queue.
        """
        residual = rho * self._service_sq / (2.0 * self._mean_service)
        classes = self.config.classes
        if self.config.arbitration != "priority":
            wait = residual / (1.0 - rho) if rho < 1.0 else float("inf")
            return [wait] * len(classes)
        waits = [float("inf")] * len(classes)
        sigma = 0.0
        for level in sorted({c.priority for c in classes}, reverse=True):
            members = [i for i, c in enumerate(classes) if c.priority == level]
            sigma_above = sigma
            sigma += rho * sum(self._shares[i] for i in members)
            if sigma_above < 1.0 and sigma < 1.0:
                wait = residual / ((1.0 - sigma_above) * (1.0 - sigma))
                for i in members:
                    waits[i] = wait
        return waits

    def estimate(self, rate: float) -> AnalyticalEstimate:
        """Predict latency/throughput at ``rate`` (offered flits/cycle/node)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        rho = rate / self.saturation_rate
        waits = self._class_waits(rho)
        classes = []
        capacity = min(rate, self.saturation_rate)
        order = sorted(
            range(len(self.config.classes)),
            key=lambda i: (-self.config.classes[i].priority, i),
        )
        throughput_by_class = [0.0] * len(order)
        if self.config.arbitration == "priority":
            # Water-fill the capacity down the priority order: a saturating
            # low class cannot steal bandwidth from the classes above it.
            remaining = min(rate, self.saturation_rate)
            for i in order:
                offered = rate * self._shares[i]
                got = min(offered, remaining)
                throughput_by_class[i] = got
                remaining -= got
            capacity = sum(throughput_by_class)
        else:
            for i in range(len(order)):
                throughput_by_class[i] = capacity * self._shares[i]
        for i, cls in enumerate(self.config.classes):
            wait = waits[i]
            saturated = not np.isfinite(wait)
            latency = (
                float("inf")
                if saturated
                else self._class_t0[i] + (self._class_hops[i] + 1.0) * wait
            )
            classes.append(
                ClassEstimate(
                    name=cls.name,
                    injection_rate=rate * self._shares[i],
                    avg_latency=latency,
                    zero_load_latency=self._class_t0[i],
                    avg_hops=self._class_hops[i],
                    throughput=throughput_by_class[i],
                    utilization=rho * self._shares[i],
                    saturated=saturated,
                )
            )
        saturated = any(c.saturated for c in classes)
        avg_latency = (
            float("inf")
            if saturated
            else sum(s * c.avg_latency for s, c in zip(self._shares, classes))
        )
        return AnalyticalEstimate(
            injection_rate=rate,
            avg_latency=avg_latency,
            zero_load_latency=sum(
                s * t0 for s, t0 in zip(self._shares, self._class_t0)
            ),
            avg_hops=sum(s * h for s, h in zip(self._shares, self._class_hops)),
            throughput=capacity,
            utilization=rho,
            saturation_rate=self.saturation_rate,
            saturated=saturated,
            classes=tuple(classes),
        )

    def curve(self, rates: Sequence[float]) -> list[AnalyticalEstimate]:
        """Estimates over ``rates`` (one model build, N arithmetic calls)."""
        return [self.estimate(r) for r in rates]


def estimate(
    config: NetworkConfig,
    rate: float,
    *,
    capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
) -> AnalyticalEstimate:
    """One-shot convenience: build the model and estimate at ``rate``."""
    return AnalyticalModel(config, capacity_factor=capacity_factor).estimate(rate)


def estimate_curve(
    config: NetworkConfig,
    rates: Iterable[float],
    *,
    capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
) -> list[AnalyticalEstimate]:
    """One-shot convenience: the model's latency–load curve over ``rates``."""
    return AnalyticalModel(config, capacity_factor=capacity_factor).curve(list(rates))


def sweep_record(model: AnalyticalModel, rate: float) -> dict:
    """An estimate shaped like the open-loop sweep runner's record.

    Field-compatible with :func:`repro.__main__._openloop_runner` output so
    steered sweeps can interleave model-filled and simulated points in one
    table/journal; ``worst_node`` is NaN (the model has no per-node view)
    and ``source`` tags the record ``"analytical"``.
    """
    est = model.estimate(rate)
    record: dict = {
        "latency": est.avg_latency,
        "worst_node": float("nan"),
        "throughput": est.throughput,
        "saturated": est.saturated,
    }
    if len(model.config.classes) > 1:
        record["class_names"] = [c.name for c in model.config.classes]
        record["class_latency"] = [c.avg_latency for c in est.classes]
        record["class_throughput"] = [c.throughput for c in est.classes]
    record["source"] = "analytical"
    return record
