"""The correlation ladder's zero-cycle rung: analytical vs closed-loop batch.

The paper validates each cheaper methodology against the next more faithful
one by Pearson correlation (§III-B: batch vs open-loop r ≈ 0.83→0.9x).
This module extends the ladder downward: run the closed-loop batch driver
over a range of ``m`` (outstanding requests), convert each run's achieved
load ``θ`` into a model query, and correlate the model's mean latency with
the measured batch request latency on the pre-saturation points — the same
exclusion rule :func:`repro.core.correlation.pearson` applies to saturated
open-loop points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import NetworkConfig
from ..core.closedloop import BatchSimulator
from ..core.correlation import pearson
from .model import DEFAULT_CAPACITY_FACTOR, AnalyticalModel

__all__ = ["LadderRung", "LadderResult", "analytical_vs_batch"]


@dataclass(frozen=True)
class LadderRung:
    """One ladder point: the batch driver and the model at the same load."""

    m: int
    achieved_load: float
    batch_latency: float
    analytical_latency: float
    saturated: bool


@dataclass(frozen=True)
class LadderResult:
    """All rungs plus the Pearson r over the pre-saturation ones."""

    rungs: tuple[LadderRung, ...]
    r: float

    @property
    def pre_saturation(self) -> tuple[LadderRung, ...]:
        return tuple(rung for rung in self.rungs if not rung.saturated)


def analytical_vs_batch(
    config: NetworkConfig,
    m_values: Sequence[int] = (1, 2, 4, 8, 16, 32),
    *,
    batch_size: int = 200,
    capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
    max_utilization: float = 0.85,
    min_load_growth: float = 0.10,
    batch_kwargs: Optional[dict] = None,
) -> LadderResult:
    """Correlate model latency with batch request latency across ``m``.

    Each ``m`` yields one rung: the batch run's achieved load ``θ``
    (flits/cycle/node) is fed to the model, pairing the measured mean
    request latency with the model's mean latency *at the load the machine
    actually reached* — the same load-matching step the paper's batch vs
    open-loop comparison uses.

    ``r`` covers the *pre-saturation* rungs only.  A rung is past
    saturation once the model's bottleneck utilization at ``θ`` reaches
    ``max_utilization``, the model saturates outright, or doubling ``m``
    grew ``θ`` by less than ``min_load_growth`` (the plateau signature);
    every larger ``m`` is excluded too, because past its knee the
    closed-loop machine's achieved load plateaus — or drops — while its
    latency keeps climbing, so ``θ`` no longer identifies the operating
    point.  This is the paper's own rule of dropping the near-saturation
    ``m`` values (see
    :meth:`repro.core.correlation.CorrelationResult.filtered`).
    """
    model = AnalyticalModel(config, capacity_factor=capacity_factor)
    kwargs = dict(batch_kwargs or {})
    rungs: list[LadderRung] = []
    xs: list[float] = []
    ys: list[float] = []
    past_knee = False
    prev_theta: Optional[float] = None
    for m in sorted(int(m) for m in m_values):
        res = BatchSimulator(
            config, batch_size=batch_size, max_outstanding=m, **kwargs
        ).run()
        theta = min(max(res.throughput, 1e-3), 1.0)
        est = model.estimate(theta)
        plateaued = (
            prev_theta is not None
            and theta < prev_theta * (1.0 + min_load_growth)
        )
        saturated = (
            past_knee
            or est.saturated
            or est.utilization >= max_utilization
            or plateaued
        )
        past_knee = saturated
        prev_theta = theta
        rungs.append(
            LadderRung(
                m=m,
                achieved_load=theta,
                batch_latency=float(res.avg_request_latency),
                analytical_latency=est.avg_latency,
                saturated=saturated,
            )
        )
        if not saturated:
            xs.append(est.avg_latency)
            ys.append(float(res.avg_request_latency))
    r = pearson(xs, ys) if len(xs) >= 2 else float("nan")
    return LadderResult(tuple(rungs), r)
