"""Zero-cycle analytical surrogate backend (``backend="analytical"``).

See :mod:`repro.analytical.model` for the queueing model and
:mod:`repro.analytical.ladder` for the correlation rung against the
closed-loop batch driver.  Sweep steering lives in
:mod:`repro.core.steering`.
"""

from .ladder import LadderResult, LadderRung, analytical_vs_batch
from .model import (
    DEFAULT_CAPACITY_FACTOR,
    AnalyticalEstimate,
    AnalyticalModel,
    ClassEstimate,
    estimate,
    estimate_curve,
    sweep_record,
)

__all__ = [
    "AnalyticalModel",
    "AnalyticalEstimate",
    "ClassEstimate",
    "DEFAULT_CAPACITY_FACTOR",
    "estimate",
    "estimate_curve",
    "sweep_record",
    "LadderRung",
    "LadderResult",
    "analytical_vs_batch",
]
