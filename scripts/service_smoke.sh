#!/usr/bin/env bash
# End-to-end smoke for the distributed sweep service, exercised through the
# CLI exactly as a user would: start a controller and two workers, submit a
# sweep, SIGKILL one worker mid-run, and assert that
#
#   1. the run completes with a clean health summary (no failed points), and
#   2. the remote records are bit-identical (modulo wall_seconds) to the
#      same sweep executed through the local process-pool path.
#
# The deterministic kill-mid-lease variants live in tests/test_chaos.py;
# this script checks the shipped serve/worker/submit entry points wire the
# same machinery together.
set -euo pipefail

PORT="${SMOKE_PORT:-7431}"
TMP="$(mktemp -d)"
cleanup() {
    kill "$(jobs -p)" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

SWEEP_ARGS=(--k 4 --warmup 200 --measure 600
            --rates 0.05,0.10,0.15,0.20 --axis router-delay=1,2)

echo "== local baseline =="
python -m repro sweep "${SWEEP_ARGS[@]}" --journal "$TMP/local.jsonl" \
    >/dev/null

echo "== controller + 2 workers on port $PORT =="
python -m repro serve --port "$PORT" --heartbeat-timeout 5 \
    --fallback-after 60 &
sleep 1
python -m repro worker "127.0.0.1:$PORT" --name smoke-a 2>/dev/null &
python -m repro worker "127.0.0.1:$PORT" --name smoke-b 2>/dev/null &
WORKER_B=$!

echo "== submit, killing worker smoke-b after the first record lands =="
python -m repro submit "127.0.0.1:$PORT" "${SWEEP_ARGS[@]}" \
    --journal "$TMP/remote.jsonl" >/dev/null 2>"$TMP/health.txt" &
SUBMIT=$!
for _ in $(seq 150); do
    grep -qs '"index"' "$TMP/remote.jsonl" && break
    sleep 0.2
done
kill -9 "$WORKER_B" 2>/dev/null || true
wait "$SUBMIT"

echo "== health summary =="
cat "$TMP/health.txt"
grep -q "8/8 ok" "$TMP/health.txt"
! grep -q "failed" "$TMP/health.txt"

python - "$TMP/local.jsonl" "$TMP/remote.jsonl" <<'PY'
import json
import sys


def records(path):
    out = {}
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if "index" not in obj:  # fingerprint header
            continue
        out[obj["index"]] = {
            k: v for k, v in obj["record"].items() if k != "wall_seconds"
        }
    return out


local, remote = records(sys.argv[1]), records(sys.argv[2])
assert len(local) == 8, f"local baseline incomplete: {len(local)}/8"
assert local == remote, (
    f"records differ: {len(local)} local vs {len(remote)} remote, "
    f"mismatched indices: "
    f"{sorted(i for i in local if remote.get(i) != local[i])}"
)
print(f"service smoke OK: {len(local)} records bit-identical to local path")
PY
