"""Figure 11: node distributions of open-loop latency and batch runtime
under DOR vs VAL with transpose traffic at m = 1.

Paper: DOR's per-node average latency distribution sits far left of VAL's
(average runtime 44% lower), yet the *worst-case* runtime bins are
identical — the corner nodes dominate both.
"""

from __future__ import annotations

import numpy as np
from conftest import BATCH_SIZE, OPENLOOP, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.metrics import node_distribution
from repro.core.openloop import OpenLoopSimulator


def test_fig11_distributions(benchmark):
    def run():
        out = {}
        for alg in ("dor", "val"):
            cfg = NetworkConfig(routing=alg, traffic="transpose")
            ol = OpenLoopSimulator(cfg, **OPENLOOP).run(0.05)
            ba = BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=1).run()
            out[alg] = (ol.per_node_latency, ba.node_finish)
        return out

    out = once(benchmark, run)
    sections = []
    for alg in ("dor", "val"):
        lat, finish = out[alg]
        lat = lat[np.isfinite(lat)]
        lat_edges, lat_frac = node_distribution(lat, bins=8, range_=(0, 40))
        rt_edges, rt_frac = node_distribution(
            finish.astype(float), bins=8, range_=(0, max(out["dor"][1].max(), out["val"][1].max()) * 1.01)
        )
        rows = [
            [f"{lat_edges[i]:.0f}-{lat_edges[i+1]:.0f}", lat_frac[i]]
            for i in range(len(lat_frac))
        ]
        sections.append(
            format_table(
                ["avg latency bin (cycles)", "% nodes"],
                rows,
                precision=2,
                title=f"Figure 11 - open-loop per-node latency, {alg.upper()}",
            )
        )
        rows = [
            [f"{rt_edges[i]:.0f}-{rt_edges[i+1]:.0f}", rt_frac[i]]
            for i in range(len(rt_frac))
        ]
        sections.append(
            format_table(
                ["runtime bin (cycles)", "% nodes"],
                rows,
                precision=2,
                title=f"Figure 11 - batch per-node runtime, {alg.upper()}",
            )
        )
    dor_lat, dor_fin = out["dor"]
    val_lat, val_fin = out["val"]
    mean_gap = np.nanmean(val_fin) / np.nanmean(dor_fin) - 1
    worst_gap = val_fin.max() / dor_fin.max() - 1
    text = (
        "\n\n".join(sections)
        + f"\n\nmean runtime VAL vs DOR: {100 * mean_gap:+.1f}% (paper: DOR "
        f"~44% lower on average)\n"
        f"worst-case runtime VAL vs DOR: {100 * worst_gap:+.1f}% (paper: "
        f"identical - decided by the corner nodes)"
    )
    emit("fig11_distributions", text)
    assert mean_gap > 0.15  # VAL clearly worse on average
    assert abs(worst_gap) < 0.08  # ...but not in the worst case
    assert np.nanmean(val_lat) > np.nanmean(dor_lat)
