"""Figure 3: open-loop impact of router delay (a) and buffer size (b).

Paper: tr scales zero-load latency by 1.5x/2.5x (tr=2/4) but leaves
saturation at ~43%; buffer depth leaves zero-load latency alone but starves
throughput when shallow.  Our credit loop is 3 cycles, so the starved point
is q=2 where the paper's was q=4 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import OPENLOOP, emit, once

from repro.analysis import ascii_plot, format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator

LOADS = (0.05, 0.15, 0.25, 0.32, 0.38, 0.42)
TRS = (1, 2, 4)
QS = (2, 4, 16, 32)


def _curves(configs):
    out = {}
    for label, cfg in configs:
        sim = OpenLoopSimulator(cfg, **OPENLOOP)
        out[label] = (
            sim.latency_load_sweep(LOADS),
            sim.zero_load_latency(),
            sim.saturation_throughput(tolerance=0.02),
        )
    return out


def test_fig03a_router_delay(benchmark):
    base = NetworkConfig()
    res = once(
        benchmark,
        lambda: _curves([(f"tr={tr}", base.with_(router_delay=tr)) for tr in TRS]),
    )
    rows = [[label, zl, sat] for label, (_, zl, sat) in res.items()]
    table = format_table(
        ["config", "zero_load", "saturation"],
        rows,
        title="Figure 3(a) - router delay, open loop",
    )
    plot = ascii_plot(
        {
            label: [(r.injection_rate, r.avg_latency) for r in sweep]
            for label, (sweep, _, _) in res.items()
        },
        xlabel="offered load",
        ylabel="avg latency",
    )
    zl = {label: v[1] for label, v in res.items()}
    sat = {label: v[2] for label, v in res.items()}
    text = (
        f"{table}\n\n{plot}\n"
        f"zero-load ratios vs tr=1: tr=2 {zl['tr=2']/zl['tr=1']:.2f} "
        f"(paper 1.5), tr=4 {zl['tr=4']/zl['tr=1']:.2f} (paper 2.5)\n"
        f"saturation unchanged by tr (paper ~0.43): "
        + ", ".join(f"{label} {s:.3f}" for label, s in sat.items())
    )
    emit("fig03a_router_delay", text)
    assert zl["tr=2"] / zl["tr=1"] == __import__("pytest").approx(1.5, abs=0.1)
    assert zl["tr=4"] / zl["tr=1"] == __import__("pytest").approx(2.5, abs=0.15)
    assert max(sat.values()) - min(sat.values()) < 0.05


def test_fig03b_buffer_size(benchmark):
    base = NetworkConfig()
    res = once(
        benchmark,
        lambda: _curves([(f"q={q}", base.with_(vc_buffer_size=q)) for q in QS]),
    )
    rows = [[label, zl, sat] for label, (_, zl, sat) in res.items()]
    table = format_table(
        ["config", "zero_load", "saturation"],
        rows,
        title="Figure 3(b) - VC buffer depth, open loop",
    )
    zl = {label: v[1] for label, v in res.items()}
    sat = {label: v[2] for label, v in res.items()}
    text = (
        f"{table}\n"
        f"zero-load latency q-independent (paper: yes): spread "
        f"{max(zl.values()) - min(zl.values()):.2f} cycles\n"
        f"shallow-buffer throughput loss q=2 vs q=16: "
        f"{100 * (1 - sat['q=2'] / sat['q=16']):.1f}% (paper: ~15.5% at its "
        f"starved point q=4; our 3-cycle credit loop moves the knee to q=2)\n"
        f"q=16 -> q=32 gains {100 * (sat['q=32'] / sat['q=16'] - 1):.1f}% "
        f"(paper: buffers beyond 16 no longer the bottleneck)"
    )
    emit("fig03b_buffer_size", text)
    assert max(zl.values()) - min(zl.values()) < 1.5
    assert sat["q=2"] < sat["q=16"]
    assert abs(sat["q=32"] - sat["q=16"]) < 0.04
