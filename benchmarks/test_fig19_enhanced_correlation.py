"""Figure 19: correlation of the enhanced batch models with exec-driven.

Paper: BA_inj and BA_re improve on the baseline's r = 0.829; surprisingly
BA_inj+re is *worse* than either alone — the anomaly that §V traces to
unmodelled kernel traffic.  We report all three r values plus each model's
regression slope against the exec-driven runtimes (slope 1 = perfect
sensitivity match; the baseline's slope is far above 1).
"""

from __future__ import annotations

import numpy as np
from conftest import TR_VALUES, emit, once

from repro.analysis import format_table
from repro.core.correlation import pearson
from repro.execdriven import BENCHMARKS
from test_fig18_enhanced_models import run_batch_models

LABELS = ("BA", "BA_inj", "BA_re", "BA_inj+re")


def pairs_for(label, batches, exec_results):
    xs, ys = [], []
    for name in BENCHMARKS:
        base_exec = exec_results[name, 1].cycles
        base_batch = batches[name, label, 1]
        for tr in TR_VALUES:
            xs.append(exec_results[name, tr].cycles / base_exec)
            ys.append(batches[name, label, tr] / base_batch)
    return np.array(xs), np.array(ys)


def test_fig19_enhanced_correlation(benchmark, exec_results_3ghz, characterizations):
    batches = once(benchmark, lambda: run_batch_models(characterizations))
    rows = []
    stats = {}
    for label in LABELS:
        xs, ys = pairs_for(label, batches, exec_results_3ghz)
        r = pearson(xs, ys)
        slope = float(np.polyfit(xs, ys, 1)[0])
        rmse = float(np.sqrt(np.mean((ys - xs) ** 2)))
        stats[label] = (r, slope, rmse)
        rows.append([label, r, slope, rmse])
    text = format_table(
        ["model", "pearson_r", "slope_vs_exec", "rmse_vs_exec"],
        rows,
        title="Figure 19 - enhanced batch models vs exec-driven",
    ) + (
        "\npaper: baseline r=0.829; BA_inj/BA_re improve; BA_inj+re "
        "unexpectedly worse than either alone (kernel traffic unmodelled "
        "- resolved in Fig. 22).  slope/rmse vs the y=x diagonal show how "
        "strongly each model over-predicts tr sensitivity."
    )
    emit("fig19_enhanced_correlation", text)
    for label, (r, slope, rmse) in stats.items():
        benchmark.extra_info[f"{label}_r"] = r
        benchmark.extra_info[f"{label}_slope"] = slope
    # every enhanced model is closer to the diagonal than the baseline
    for label in ("BA_inj", "BA_re", "BA_inj+re"):
        assert stats[label][2] < stats["BA"][2]
        assert abs(stats[label][1] - 1) < abs(stats["BA"][1] - 1)
