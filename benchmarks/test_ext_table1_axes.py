"""Extension: the Table I axes the paper lists but never plots.

* **256 nodes** — §III-A: "A 256-node on-chip network using a 16-ary
  2-cube topology is also evaluated, but the results are not included as
  they show a similar trend."  We verify the similar-trend claim: tr still
  scales zero-load latency by ~1.5x and leaves saturation untouched.
* **Virtual-channel count** — Table I lists 2 and 4 VCs; more VCs buy
  throughput (less HOL blocking) without changing zero-load latency.
* **Arbitration** — Table I lists round-robin and age-based; age-based
  trims the latency tail near saturation.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import emit, once

from repro import rng as rng_mod
from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator
from repro.network import Network
from repro.traffic import UniformRandom

OL_SMALL = dict(warmup=200, measure=400, drain_limit=2000)


def test_ext_256_nodes_similar_trend(benchmark):
    def run():
        out = {}
        for tr in (1, 2):
            cfg = NetworkConfig(k=16, n=2, router_delay=tr)
            sim = OpenLoopSimulator(cfg, **OL_SMALL)
            out[tr] = (
                sim.zero_load_latency(),
                sim.saturation_throughput(tolerance=0.03),
            )
        return out

    out = once(benchmark, run)
    ratio = out[2][0] / out[1][0]
    text = format_table(
        ["tr", "zero_load", "saturation"],
        [[tr, zl, sat] for tr, (zl, sat) in out.items()],
        title="Extension - 16x16 mesh (256 nodes), router-delay trend",
    ) + (
        f"\nzero-load ratio tr=2/tr=1: {ratio:.2f} (paper SIII-A: 256 nodes "
        f"'show a similar trend'; 64-node value 1.5)"
    )
    emit("ext_256_nodes", text)
    assert ratio == pytest.approx(1.5, abs=0.1)
    assert abs(out[2][1] - out[1][1]) < 0.05


def test_ext_vc_count(benchmark):
    def run():
        out = {}
        for vcs in (2, 4):
            cfg = NetworkConfig(num_vcs=vcs)
            sim = OpenLoopSimulator(cfg, **OL_SMALL)
            out[vcs] = (
                sim.zero_load_latency(),
                sim.saturation_throughput(tolerance=0.02),
            )
        return out

    out = once(benchmark, run)
    text = format_table(
        ["VCs", "zero_load", "saturation"],
        [[v, zl, sat] for v, (zl, sat) in out.items()],
        title="Extension - virtual-channel count (Table I axis)",
    ) + "\nmore VCs relieve head-of-line blocking: throughput up, zero-load flat"
    emit("ext_vc_count", text)
    assert abs(out[4][0] - out[2][0]) < 1.0
    assert out[4][1] > out[2][1]


def test_ext_arbitration_tail_latency(benchmark):
    def run():
        tails = {}
        for arb in ("round_robin", "age"):
            cfg = NetworkConfig(arbitration=arb)
            net = Network(cfg)
            gen = rng_mod.make_generator(4, "arb-ext")
            pat = UniformRandom(64)
            lat = []
            for _ in range(2500):
                for src in np.nonzero(gen.random(64) < 0.38)[0]:
                    src = int(src)
                    net.offer(net.make_packet(src, pat.dest(src, gen), 1))
                for pkt in net.step():
                    lat.append(pkt.latency)
            lat = np.array(lat[len(lat) // 4 :])  # drop warmup quarter
            tails[arb] = (float(lat.mean()), float(np.percentile(lat, 99)))
        return tails

    tails = once(benchmark, run)
    text = format_table(
        ["arbitration", "mean_latency", "p99_latency"],
        [[a, m, p] for a, (m, p) in tails.items()],
        title="Extension - arbitration policy at 88% of saturation (Table I axis)",
    ) + "\nage-based (oldest-first) arbitration bounds the tail at similar mean"
    emit("ext_arbitration", text)
    assert tails["age"][1] <= tails["round_robin"][1] * 1.05
    assert tails["age"][0] == pytest.approx(tails["round_robin"][0], rel=0.25)
