"""Ablation: dateline VC-class discipline on wrapped topologies.

DESIGN.md calls out the balanced dateline assignment (non-wrapping legs in
class 1) as a deliberate choice over the textbook strict scheme (everyone
starts in class 0).  This ablation measures what the choice buys: on the
torus, balancing recovers throughput that strict leaves idle in class 1;
on the ring the wrap fraction is high enough that the two imbalances
roughly cancel — demonstrating the choice is topology-dependent, not free.
"""

from __future__ import annotations

from conftest import OPENLOOP, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator


def test_ablation_dateline(benchmark):
    def run():
        out = {}
        for topo in ("torus", "ring"):
            for mode in ("balanced", "strict"):
                cfg = NetworkConfig(topology=topo, num_vcs=4, dateline=mode)
                sim = OpenLoopSimulator(cfg, **OPENLOOP)
                out[topo, mode] = (
                    sim.zero_load_latency(),
                    sim.saturation_throughput(tolerance=0.02),
                )
        return out

    out = once(benchmark, run)
    rows = [
        [topo, mode, zl, sat]
        for (topo, mode), (zl, sat) in out.items()
    ]
    gain_torus = out["torus", "balanced"][1] / out["torus", "strict"][1] - 1
    gain_ring = out["ring", "balanced"][1] / out["ring", "strict"][1] - 1
    text = format_table(
        ["topology", "dateline", "zero_load", "saturation"],
        rows,
        title="Ablation - dateline VC-class discipline (4 VCs)",
    ) + (
        f"\nbalanced vs strict saturation: torus {100 * gain_torus:+.1f}%, "
        f"ring {100 * gain_ring:+.1f}%\n"
        "strict leaves the high VC class idle for non-wrapping legs; on the "
        "torus (short legs, few wraps) balancing wins, on the ring (many "
        "wrapping legs) the imbalances roughly cancel"
    )
    emit("ablation_dateline", text)
    # zero-load latency must be identical (pure VC-class policy change)
    for topo in ("torus", "ring"):
        zl_b = out[topo, "balanced"][0]
        zl_s = out[topo, "strict"][0]
        assert abs(zl_b - zl_s) < 1.0
    # the design choice pays off on the torus (a few percent at this scaled
    # window; ~9% with longer measurement windows) and is topology-dependent
    assert gain_torus > 0.005
    assert abs(gain_ring) < 0.3
