"""Figure 13: lu's logical communication pattern vs its actual traffic.

Paper: the application's explicit producer/consumer pattern is structured
(Fig. 13a), but the traffic actually injected into the network is spread by
home-tile address interleaving and looks near-uniform (Fig. 13b) — the
justification for using uniform random traffic in the batch/exec-driven
comparison.
"""

from __future__ import annotations

import numpy as np
from conftest import EXEC_INSTRUCTIONS, cmp_config, emit, once

from repro.analysis import format_matrix
from repro.execdriven import CmpSystem, lu


def _normalized_row_cv(matrix: np.ndarray) -> float:
    """Coefficient of variation of the row-normalized matrix: 0 = uniform."""
    m = matrix.astype(float)
    rows = m.sum(axis=1, keepdims=True)
    rows[rows == 0] = 1.0
    norm = m / rows
    return float(norm.std() / max(norm.mean(), 1e-12))


def test_fig13_traffic_matrix(benchmark):
    def run():
        system = CmpSystem(lu(EXEC_INSTRUCTIONS), cmp_config(1), seed=2)
        return system.run()

    res = once(benchmark, run)
    logical_cv = _normalized_row_cv(res.logical_matrix)
    actual_cv = _normalized_row_cv(res.traffic_matrix)
    text = (
        format_matrix(
            res.logical_matrix,
            title="Figure 13(a) - lu logical communication (consumer x producer; dark = heavy)",
        )
        + "\n\n"
        + format_matrix(
            res.traffic_matrix,
            title="Figure 13(b) - actual injected traffic (src x dst)",
        )
        + f"\n\nnon-uniformity (row-normalized CV): logical {logical_cv:.2f}, "
        f"actual {actual_cv:.2f}\n"
        "paper: the actual traffic 'appears more random' than the "
        "application's communication pattern -> uniform random is the "
        "right synthetic stand-in"
    )
    emit("fig13_traffic_matrix", text)
    benchmark.extra_info["logical_cv"] = logical_cv
    benchmark.extra_info["actual_cv"] = actual_cv
    assert actual_cv < 0.6 * logical_cv
