"""Table IV: per-benchmark user/OS NAR, user/OS L2 miss rate, application-
dependent additional kernel traffic, and Rtimer.

These are exactly the parameters the OS-extended batch model consumes
(§V / Fig. 22); the harness measures them from the ideal-network runs with
the 75 MHz timer active and prints measured-vs-paper.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table

PAPER = {
    # bench: (user_nar, os_nar, user_l2, os_l2, static_extra)
    "blackscholes": (0.024, 0.266, 0.004, 0.013, 0.58),
    "lu": (0.021, 0.048, 0.418, 0.005, 0.53),
    "canneal": (0.038, 0.126, 0.274, 0.029, 0.57),
    "fft": (0.033, 0.442, 0.708, 0.021, 0.34),
    "barnes": (0.055, 0.063, 0.011, 0.017, 0.67),
}


def test_table4_benchmark_characteristics(
    benchmark, characterizations, exec_results_75mhz
):
    ch = once(benchmark, lambda: characterizations)
    rows = []
    for name, c in ch.items():
        p = PAPER[name]
        rows.append(
            [
                name,
                c.user_nar,
                p[0],
                c.os_nar,
                c.user_l2_miss,
                p[2],
                c.os_l2_miss,
                p[3],
                c.static_kernel_fraction,
                p[4],
                exec_results_75mhz[name, 1].timer_rate,
            ]
        )
    text = format_table(
        ["benchmark", "uNAR", "uNAR(p)", "osNAR", "uL2", "uL2(p)", "osL2",
         "osL2(p)", "static", "static(p)", "Rtimer"],
        rows,
        precision=3,
        title="Table IV - benchmark characteristics (measured vs paper)",
    ) + (
        "\nRtimer here is interrupts/cycle at the scaled 75MHz interval; the "
        "paper's absolute values reflect unscaled Solaris runs"
    )
    emit("table4_benchmark_characteristics", text)
    for name, c in ch.items():
        p = PAPER[name]
        assert abs(c.user_nar - p[0]) < 0.02, name
        assert abs(c.user_l2_miss - p[2]) < 0.12, name
        assert abs(c.os_l2_miss - p[3]) < 0.1, name
        assert abs(c.static_kernel_fraction - p[4]) < 0.15, name
        assert exec_results_75mhz[name, 1].timer_rate > 0
