"""Figure 9: open-loop routing comparison (DOR / MA / ROMM / VAL).

Paper, uniform random: DOR/MA/ROMM share the minimal zero-load latency,
VAL pays ~2x; under transpose, DOR saturates early (no path diversity)
while VAL trades zero-load latency for throughput and the adaptive/ROMM
routes sit between.
"""

from __future__ import annotations

from conftest import OPENLOOP, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator

ALGS = ("dor", "ma", "romm", "val")


def _study(traffic):
    out = {}
    for alg in ALGS:
        cfg = NetworkConfig(routing=alg, traffic=traffic)
        sim = OpenLoopSimulator(cfg, **OPENLOOP)
        out[alg] = (
            sim.zero_load_latency(),
            sim.saturation_throughput(tolerance=0.02),
        )
    return out


def test_fig09a_uniform_random(benchmark):
    out = once(benchmark, lambda: _study("uniform_random"))
    rows = [[a, out[a][0], out[a][1]] for a in ALGS]
    text = format_table(
        ["routing", "zero_load", "saturation"],
        rows,
        title="Figure 9(a) - routing algorithms, uniform random, open loop",
    ) + (
        "\npaper: DOR/MA/ROMM minimal zero-load; VAL ~2x zero-load; DOR "
        "best throughput on uniform random"
    )
    emit("fig09a_routing_uniform", text)
    zl = {a: out[a][0] for a in ALGS}
    assert zl["val"] > 1.6 * zl["dor"]
    assert abs(zl["ma"] - zl["dor"]) < 2.0
    assert abs(zl["romm"] - zl["dor"]) < 2.0
    assert out["val"][1] < out["dor"][1]  # VAL halves UR throughput


def test_fig09b_transpose(benchmark):
    out = once(benchmark, lambda: _study("transpose"))
    rows = [[a, out[a][0], out[a][1]] for a in ALGS]
    text = format_table(
        ["routing", "zero_load", "saturation"],
        rows,
        title="Figure 9(b) - routing algorithms, transpose, open loop",
    ) + (
        "\npaper: VAL has higher zero-load latency but higher throughput "
        "than DOR under transpose (path diversity beats minimal routing on "
        "adversarial permutations)"
    )
    emit("fig09b_routing_transpose", text)
    zl = {a: out[a][0] for a in ALGS}
    sat = {a: out[a][1] for a in ALGS}
    assert zl["val"] > zl["dor"]
    assert sat["val"] > sat["dor"]
    assert sat["ma"] > sat["dor"]
