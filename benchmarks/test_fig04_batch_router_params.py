"""Figure 4: batch-model impact of router delay (a) and buffer size (b).

Paper: at small m the runtime tracks zero-load latency ratios; at large m
(achieved throughput near saturation) tr's impact is nearly negligible and
buffer depth takes over — the same insight as the open-loop curves, through
a completely different metric.
"""

from __future__ import annotations

import pytest
from conftest import BATCH_SIZE, M_VALUES, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator

TRS = (1, 2, 4)
QS = (2, 4, 16)


def _batch_sweep(configs):
    out = {}
    for label, cfg in configs:
        for m in M_VALUES:
            res = BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=m).run()
            out[label, m] = (res.runtime, res.throughput)
    return out


def _render(title, labels, out, baseline_label):
    rows = []
    for m in M_VALUES:
        row = [m]
        for label in labels:
            t, _ = out[label, m]
            row.append(t / out[baseline_label, 1][0])
        for label in labels:
            row.append(out[label, m][1])
        rows.append(row)
    return format_table(
        ["m"] + [f"T {lbl}" for lbl in labels] + [f"theta {lbl}" for lbl in labels],
        rows,
        precision=3,
        title=title,
    )


def test_fig04a_router_delay(benchmark):
    base = NetworkConfig()
    labels = [f"tr={tr}" for tr in TRS]
    out = once(
        benchmark,
        lambda: _batch_sweep([(f"tr={tr}", base.with_(router_delay=tr)) for tr in TRS]),
    )
    table = _render(
        "Figure 4(a) - batch model, router delay (T normalized to tr=1, m=1)",
        labels,
        out,
        "tr=1",
    )
    r_m1 = out["tr=4", 1][0] / out["tr=1", 1][0]
    r_m32 = out["tr=4", 32][0] / out["tr=1", 32][0]
    text = (
        f"{table}\n"
        f"tr=4/tr=1 runtime ratio: m=1 {r_m1:.2f} (paper: tracks zero-load "
        f"2.5x), m=32 {r_m32:.2f} (paper: nearly negligible)"
    )
    emit("fig04a_batch_router_delay", text)
    assert r_m1 == pytest.approx(2.5, abs=0.3)
    assert r_m32 < 1.4


def test_fig04b_buffer_size(benchmark):
    base = NetworkConfig()
    labels = [f"q={q}" for q in QS]
    out = once(
        benchmark,
        lambda: _batch_sweep([(f"q={q}", base.with_(vc_buffer_size=q)) for q in QS]),
    )
    table = _render(
        "Figure 4(b) - batch model, buffer size (T normalized to q=2, m=1)",
        labels,
        out,
        "q=2",
    )
    m1_spread = out["q=2", 1][0] / out["q=16", 1][0]
    m32_gain = out["q=2", 32][0] / out["q=16", 32][0]
    text = (
        f"{table}\n"
        f"q=2 vs q=16 runtime ratio: m=1 {m1_spread:.2f} (paper: ~none at "
        f"zero load), m=32 {m32_gain:.2f} (paper: larger buffers win as "
        f"load rises)"
    )
    emit("fig04b_batch_buffer_size", text)
    assert m1_spread == pytest.approx(1.0, abs=0.1)
    assert m32_gain > 1.1
