"""Figure 15: correlation between GEMS+Garnet and the baseline batch model.

Paper: r = 0.829 — the baseline batch model (MSHR limit only) does not
track how real workloads respond to router delay.
"""

from __future__ import annotations

import numpy as np
from conftest import BATCH_SIZE, TR_VALUES, emit, once

from repro.analysis import ascii_scatter, format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.correlation import pearson
from repro.execdriven import BENCHMARKS


def collect_pairs(exec_results, batch_runtimes):
    """(exec_norm, batch_norm) pairs per benchmark x tr, both normalized to
    tr=1 — exactly the paper's Fig. 15/19/22 axes."""
    xs, ys = [], []
    for name in BENCHMARKS:
        base = exec_results[name, 1].cycles
        for tr in TR_VALUES:
            xs.append(exec_results[name, tr].cycles / base)
            ys.append(batch_runtimes[tr] / batch_runtimes[1])
    return np.array(xs), np.array(ys)


def test_fig15_baseline_correlation(benchmark, exec_results_3ghz):
    def run_ba():
        out = {}
        for tr in TR_VALUES:
            cfg = NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
            out[tr] = BatchSimulator(
                cfg, batch_size=BATCH_SIZE, max_outstanding=1
            ).run().runtime
        return out

    ba = once(benchmark, run_ba)
    xs, ys = collect_pairs(exec_results_3ghz, ba)
    r = pearson(xs, ys)
    rows = [[f"{x:.2f}", f"{y:.2f}"] for x, y in zip(xs, ys)]
    text = (
        format_table(
            ["exec_norm_runtime", "batch_norm_runtime"],
            rows,
            title="Figure 15 - exec-driven vs baseline batch model",
        )
        + "\n\n"
        + ascii_scatter(
            list(zip(xs, ys)),
            xlabel="GEMS-substitute normalized runtime",
            ylabel="batch normalized runtime",
        )
        + f"\nr = {r:.3f} (paper: 0.829 - poor correlation; the baseline "
        f"batch model overpredicts every workload's tr sensitivity)"
    )
    emit("fig15_baseline_correlation", text)
    benchmark.extra_info["r"] = r
    # correlated in direction but systematically off the diagonal
    assert 0.5 < r < 0.98
    assert (ys >= xs - 0.15).all()  # batch model over-predicts throughout
