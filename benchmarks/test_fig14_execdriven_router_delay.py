"""Figure 14: exec-driven vs baseline batch model as router delay varies.

Paper: each benchmark responds differently to tr (lu > 3x at tr=8, fft only
1.51x), while the baseline batch model (BA) predicts one curve for all —
approximately the zero-load ratios 1.45 / 2.4 / 4.2 — wildly overstating
the impact for every real workload.
"""

from __future__ import annotations

from conftest import BATCH_SIZE, TR_VALUES, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.execdriven import BENCHMARKS


def test_fig14_execdriven_router_delay(benchmark, exec_results_3ghz):
    def run_ba():
        out = {}
        for tr in TR_VALUES:
            cfg = NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
            out[tr] = BatchSimulator(
                cfg, batch_size=BATCH_SIZE, max_outstanding=1
            ).run().runtime
        return out

    ba = once(benchmark, run_ba)
    names = list(BENCHMARKS) + ["BA"]
    rows = []
    ratios = {}
    for name in BENCHMARKS:
        base = exec_results_3ghz[name, 1].cycles
        ratios[name] = [exec_results_3ghz[name, tr].cycles / base for tr in TR_VALUES]
        rows.append([name] + ratios[name])
    ratios["BA"] = [ba[tr] / ba[1] for tr in TR_VALUES]
    rows.append(["BA"] + ratios["BA"])
    text = format_table(
        ["workload"] + [f"tr={tr}" for tr in TR_VALUES],
        rows,
        precision=2,
        title="Figure 14 - normalized runtime vs router delay (exec-driven + batch)",
    ) + (
        "\npaper: batch model ratios ~1.45/2.4/4.2; benchmarks differ "
        "(lu >3x, fft 1.51x); BA overstates tr's impact for every workload"
    )
    emit("fig14_execdriven_router_delay", text)
    # batch model tracks the zero-load ratios
    assert 1.3 < ratios["BA"][1] < 1.7
    assert 3.5 < ratios["BA"][3] < 5.5
    # every real workload is hit less hard than BA predicts
    for name in BENCHMARKS:
        assert ratios[name][3] < ratios["BA"][3]
    # benchmarks differ from each other; fft is the least sensitive
    spread = [ratios[name][3] for name in BENCHMARKS]
    assert max(spread) - min(spread) > 0.15
    assert ratios["fft"][3] == min(spread)
    benchmark.extra_info["ba_tr8_ratio"] = ratios["BA"][3]
