"""Ablation: blocking-load fraction vs router-delay sensitivity.

DESIGN.md models in-order cores as blocking on a per-benchmark fraction of
their L1 misses.  This ablation shows that knob is what couples system
runtime to network latency at all: with no blocking (perfect MLP within 8
MSHRs) router delay is almost free; fully blocking cores approach the
batch model's zero-load scaling.  It also grounds the m=1 choice for the
enhanced batch variants (Figs. 18/19/22).
"""

from __future__ import annotations

import dataclasses

from conftest import cmp_config, emit, once

from repro.analysis import format_table
from repro.execdriven import CmpSystem, canneal

FRACTIONS = (0.0, 0.5, 1.0)
TRS = (1, 8)
INSTR = 5000


def test_ablation_blocking(benchmark):
    def run():
        out = {}
        for frac in FRACTIONS:
            spec = dataclasses.replace(canneal(INSTR), blocking_fraction=frac)
            for tr in TRS:
                res = CmpSystem(spec, cmp_config(tr), seed=2).run()
                out[frac, tr] = res.cycles
        return out

    out = once(benchmark, run)
    rows = [
        [frac, out[frac, 1], out[frac, 8], out[frac, 8] / out[frac, 1]]
        for frac in FRACTIONS
    ]
    text = format_table(
        ["blocking_fraction", "cycles tr=1", "cycles tr=8", "tr8/tr1"],
        rows,
        precision=2,
        title="Ablation - blocking-load fraction vs router-delay sensitivity (canneal)",
    ) + (
        "\nnon-blocking cores hide the network entirely; blocking loads are "
        "what expose router delay to system runtime (the basis for running "
        "the enhanced batch models at m=1)"
    )
    emit("ablation_blocking", text)
    ratios = [out[f, 8] / out[f, 1] for f in FRACTIONS]
    assert ratios[0] < 1.1  # fully non-blocking: tr nearly free
    assert ratios[2] > ratios[1] > ratios[0]  # monotone in blocking
    assert ratios[2] > 1.3
