"""Figure 1: the canonical latency vs. offered-traffic curve.

The paper's Fig. 1 is a schematic; this harness regenerates the real curve
for the Table I baseline (8x8 mesh, DOR, uniform random) and reports the
zero-load latency T0 and saturation throughput θ it sketches.
"""

from __future__ import annotations

from conftest import OPENLOOP, emit, once

from repro.analysis import ascii_plot, format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator

LOADS = (0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.38, 0.41, 0.43)


def test_fig01_latency_load_curve(benchmark):
    sim = OpenLoopSimulator(NetworkConfig(), **OPENLOOP)

    def run():
        results = sim.latency_load_sweep(LOADS)
        sat = sim.saturation_throughput(tolerance=0.02)
        return results, sat

    results, sat = once(benchmark, run)
    zero_load = results[0].avg_latency
    rows = [
        [r.injection_rate, r.avg_latency, r.throughput, r.saturated] for r in results
    ]
    table = format_table(
        ["offered", "avg_latency", "throughput", "saturated"],
        rows,
        title="Figure 1 - latency vs offered traffic (8x8 mesh, DOR, uniform random)",
    )
    plot = ascii_plot(
        {"latency": [(r.injection_rate, r.avg_latency) for r in results]},
        xlabel="offered load (flits/cycle/node)",
        ylabel="avg latency (cycles)",
    )
    text = (
        f"{table}\n\n{plot}\n"
        f"zero-load latency T0 = {zero_load:.1f} cycles (analytic "
        f"{sim.analytic_zero_load_latency():.1f})\n"
        f"saturation throughput = {sat:.3f} flits/cycle/node "
        f"(paper SIII-B: ~0.43)"
    )
    emit("fig01_latency_load_curve", text)
    benchmark.extra_info["zero_load_latency"] = zero_load
    benchmark.extra_info["saturation_throughput"] = sat
    assert 0.38 < sat < 0.48
    assert zero_load < 20
