"""Extension: temporal-distribution axis (paper §II-A).

§II-A defines open-loop traffic by spatial distribution, *temporal
distribution*, and message size, but the paper evaluates only the Bernoulli
temporal process.  This extension sweeps burstiness at a fixed average
load using a Markov on/off process: burstier traffic pays higher latency
at the same offered load and saturates earlier — a reminder that the
conventional Bernoulli open-loop curve is a best case.
"""

from __future__ import annotations

from conftest import OPENLOOP, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator
from repro.traffic import MarkovOnOff

BURSTS = (1, 20, 80)  # mean burst length in cycles; 1 ~ Bernoulli-like
RATE = 0.3


def _sim(burst_length):
    if burst_length == 1:
        return OpenLoopSimulator(NetworkConfig(), **OPENLOOP)
    return OpenLoopSimulator(
        NetworkConfig(),
        process=lambda n, r: MarkovOnOff.for_average_rate(
            n, r, burst_length=burst_length
        ),
        **OPENLOOP,
    )


def test_ext_burstiness(benchmark):
    def run():
        out = {}
        for burst in BURSTS:
            sim = _sim(burst)
            res = sim.run(RATE)
            sat = sim.saturation_throughput(tolerance=0.02)
            out[burst] = (res.avg_latency, res.p99_latency, res.throughput, sat)
        return out

    out = once(benchmark, run)
    rows = [
        [b, lat, p99, thr, sat] for b, (lat, p99, thr, sat) in out.items()
    ]
    text = format_table(
        ["burst_len", f"latency@{RATE}", "p99", "throughput", "saturation"],
        rows,
        title="Extension - temporal burstiness at fixed average load (8x8 mesh)",
    ) + (
        "\nsame offered load, increasingly bursty arrivals: latency and its "
        "tail grow, saturation point falls - Bernoulli open-loop numbers "
        "are a best case (SII-A's unexplored temporal axis)"
    )
    emit("ext_burstiness", text)
    lats = [out[b][0] for b in BURSTS]
    sats = [out[b][3] for b in BURSTS]
    assert lats[0] < lats[1] < lats[2]
    assert sats[2] < sats[0]
