"""Figure 18: exec-driven runtimes vs the enhanced batch models.

Per benchmark and router delay, the paper compares GEMS+Garnet against
BA_inj (NAR injection model), BA_re (reply model) and BA_inj+re (both),
with each model's parameters derived from the benchmark's characterization
(Tables III/IV) — the same parameter flow implemented by
:func:`repro.execdriven.characterize.derive_batch_params`.
"""

from __future__ import annotations

from conftest import BATCH_SIZE, TR_VALUES, cmp_config, emit, once

from repro.analysis import format_table
from repro.core.closedloop import BatchSimulator
from repro.execdriven import BENCHMARKS, derive_batch_params

# In-order cores block on loads, so their effective memory-level
# parallelism is ~1 even with 8 MSHRs (the paper's SII-B2 argument that
# on-chip cores tolerate "only a handful" of outstanding requests); the
# batch variants therefore run at m=1, where the NAR model's injection
# gap and the round trip serialize per operation as they do in the core.
M = 1


def batch_variants(ch):
    """BA / BA_inj / BA_re / BA_inj+re parameter sets for one benchmark."""
    params = derive_batch_params(ch)
    return {
        "BA": {},
        "BA_inj": {"nar": params["nar"]},
        "BA_re": {"reply_model": params["reply_model"]},
        "BA_inj+re": {"nar": params["nar"], "reply_model": params["reply_model"]},
    }


def run_batch_models(characterizations, tr_values=TR_VALUES, batch_size=BATCH_SIZE):
    out = {}
    for name, ch in characterizations.items():
        for label, kw in batch_variants(ch).items():
            for tr in tr_values:
                cfg = cmp_config(tr).network
                res = BatchSimulator(
                    cfg, batch_size=batch_size, max_outstanding=M, **kw
                ).run()
                out[name, label, tr] = res.runtime
    return out


def test_fig18_enhanced_models(benchmark, exec_results_3ghz, characterizations):
    batches = once(benchmark, lambda: run_batch_models(characterizations))
    sections = []
    ok_closer = 0
    total = 0
    for name in BENCHMARKS:
        base_exec = exec_results_3ghz[name, 1].cycles
        rows = []
        for tr in TR_VALUES:
            row = [tr, exec_results_3ghz[name, tr].cycles / base_exec]
            for label in ("BA", "BA_inj", "BA_re", "BA_inj+re"):
                row.append(batches[name, label, tr] / batches[name, label, 1])
            rows.append(row)
        sections.append(
            format_table(
                ["tr", "exec", "BA", "BA_inj", "BA_re", "BA_inj+re"],
                rows,
                precision=2,
                title=f"Figure 18 - {name} (runtime normalized to tr=1)",
            )
        )
        # at tr=8, count whether each enhanced model lands closer to the
        # exec-driven ratio than the baseline does
        exec8 = exec_results_3ghz[name, 8].cycles / base_exec
        ba8 = batches[name, "BA", 8] / batches[name, "BA", 1]
        for label in ("BA_inj", "BA_re", "BA_inj+re"):
            v8 = batches[name, label, 8] / batches[name, label, 1]
            total += 1
            if abs(v8 - exec8) < abs(ba8 - exec8):
                ok_closer += 1
    text = "\n\n".join(sections) + (
        f"\n\nenhanced models closer to exec-driven than baseline BA at "
        f"tr=8: {ok_closer}/{total} cases (paper: enhanced models shrink "
        f"the gap; BA_inj+re is not uniformly best - see Fig. 19/SIV-D)"
    )
    emit("fig18_enhanced_models", text)
    assert ok_closer >= total * 0.6
