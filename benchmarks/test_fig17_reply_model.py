"""Figure 17: the batch model with the enhanced reply model.

Paper panels: (a) fixed 20-cycle memory latency, (b) fixed 50, (c)
probabilistic 20 + 0.1x300.  As memory latency grows it dominates the
round trip and the router delay's impact shrinks; panels (b) and (c) share
the same *mean* (50 cycles) but the probabilistic model's long 320-cycle
tail lowers the injection rate further and mutes tr even more.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.reply import FixedReply, ProbabilisticReply

MS = (1, 4, 16)
TRS = (1, 2, 4)
B = 100
MODELS = (
    ("fixed20", FixedReply(20)),
    ("fixed50", FixedReply(50)),
    ("prob 20+0.1*300", ProbabilisticReply(20, 300, 0.1)),
)


def test_fig17_reply_model(benchmark):
    def run():
        out = {}
        for label, model in MODELS:
            for m in MS:
                for tr in TRS:
                    cfg = NetworkConfig(router_delay=tr)
                    res = BatchSimulator(
                        cfg, batch_size=B, max_outstanding=m, reply_model=model
                    ).run()
                    out[label, m, tr] = (res.runtime, res.throughput)
        return out

    out = once(benchmark, run)
    sections = []
    for label, _ in MODELS:
        rows = []
        for m in MS:
            base = out[label, m, 1][0]
            rows.append(
                [m]
                + [out[label, m, tr][0] / base for tr in TRS]
                + [out[label, m, tr][1] for tr in TRS]
            )
        sections.append(
            format_table(
                ["m"] + [f"T tr={tr}" for tr in TRS] + [f"theta tr={tr}" for tr in TRS],
                rows,
                precision=3,
                title=f"Figure 17 - reply model: {label}",
            )
        )
    ratio = lambda label, m: out[label, m, 4][0] / out[label, m, 1][0]  # noqa: E731
    text = "\n\n".join(sections) + (
        f"\n\ntr=4/tr=1 runtime ratio at m=1: fixed20 {ratio('fixed20', 1):.2f}, "
        f"fixed50 {ratio('fixed50', 1):.2f}, probabilistic "
        f"{ratio('prob 20+0.1*300', 1):.2f}\n"
        f"theta at m=1, tr=1: fixed50 {out['fixed50', 1, 1][1]:.3f} vs "
        f"probabilistic {out['prob 20+0.1*300', 1, 1][1]:.3f} (paper Fig "
        f"17b/c: same mean latency but the long-tail model injects less and "
        f"mutes tr further)"
    )
    emit("fig17_reply_model", text)
    assert ratio("fixed20", 1) > ratio("fixed50", 1)
    assert out["prob 20+0.1*300", 1, 1][1] < out["fixed50", 1, 1][1]
    assert ratio("prob 20+0.1*300", 1) <= ratio("fixed50", 1) + 0.03
