"""Figure 2: batch-model runtime normalized to batch size, vs b, per m.

Paper: normalized runtime falls as b grows and saturates; larger m lowers
the asymptote (more overlap), and the asymptote's inverse is the maximum
network throughput.  Scaled: b up to 1000 (paper sweeps to 100k; the
asymptote is already flat well before that).
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import ascii_plot, format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator

B_VALUES = (10, 30, 100, 300, 1000)
M_VALUES = (1, 4, 16)


def test_fig02_batch_size(benchmark):
    cfg = NetworkConfig()

    def run():
        out = {}
        for m in M_VALUES:
            for b in B_VALUES:
                res = BatchSimulator(cfg, batch_size=b, max_outstanding=m).run()
                out[m, b] = res.normalized_runtime
        return out

    norm = once(benchmark, run)
    rows = [[b] + [norm[m, b] for m in M_VALUES] for b in B_VALUES]
    table = format_table(
        ["b"] + [f"m={m}" for m in M_VALUES],
        rows,
        precision=2,
        title="Figure 2 - runtime normalized to batch size (8x8 mesh, uniform random)",
    )
    plot = ascii_plot(
        {f"m={m}": [(b, norm[m, b]) for b in B_VALUES] for m in M_VALUES},
        xlabel="batch size b",
        ylabel="T/b",
    )
    asymptote = norm[16, 1000]
    text = (
        f"{table}\n\n{plot}\n"
        f"m=16 asymptote T/b = {asymptote:.2f}  =>  max throughput ~ "
        f"{2 / asymptote:.3f} flits/cycle/node (paper: asymptote inverse is "
        f"the network's max throughput, ~0.43)"
    )
    emit("fig02_batch_size", text)
    for m in M_VALUES:
        series = [norm[m, b] for b in B_VALUES]
        assert series[0] >= series[-1] * 0.95, "normalized runtime must fall with b"
    assert norm[1, 1000] > norm[4, 1000] > norm[16, 1000]
    benchmark.extra_info["max_throughput_estimate"] = 2 / asymptote
