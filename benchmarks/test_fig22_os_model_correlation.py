"""Figure 22: correlation with and without the kernel/OS batch extension.

Paper: adding the OS model (static batch increase + dynamic timer batches)
raises the exec-driven correlation from 0.954 to 0.972 at 3 GHz and — the
headline — from 0.705 to 0.931 at 75 MHz, where unmodelled timer traffic
had wrecked the enhanced batch model.
"""

from __future__ import annotations

import numpy as np
from conftest import BATCH_SIZE, TR_VALUES, cmp_config, emit, once

from repro.analysis import format_table
from repro.core.closedloop import BatchSimulator
from repro.core.correlation import pearson
from repro.execdriven import (
    BENCHMARKS,
    TIMER_INTERVAL_3GHZ,
    TIMER_INTERVAL_75MHZ,
    derive_batch_params,
)


def _batch_runtimes(params, with_os):
    kw = dict(nar=params["nar"], reply_model=params["reply_model"])
    if with_os:
        kw["os_model"] = params["os_model"]
    out = {}
    for tr in TR_VALUES:
        res = BatchSimulator(
            cmp_config(tr).network,
            batch_size=BATCH_SIZE,
            max_outstanding=1,  # blocking in-order cores: effective MLP ~1
            **kw,
        ).run()
        out[tr] = res.runtime
    return out


def _stats(exec_results, batches):
    xs, ys = [], []
    for name in BENCHMARKS:
        base_e = exec_results[name, 1].cycles
        base_b = batches[name][1]
        for tr in TR_VALUES:
            xs.append(exec_results[name, tr].cycles / base_e)
            ys.append(batches[name][tr] / base_b)
    xs, ys = np.array(xs), np.array(ys)
    return pearson(xs, ys), float(np.sqrt(np.mean((ys - xs) ** 2)))


def test_fig22_os_model_correlation(
    benchmark, exec_results_3ghz, exec_results_75mhz, characterizations
):
    def run():
        out = {}
        for clock, interval, exec_results in (
            ("3GHz", TIMER_INTERVAL_3GHZ, exec_results_3ghz),
            ("75MHz", TIMER_INTERVAL_75MHZ, exec_results_75mhz),
        ):
            for with_os in (False, True):
                batches = {}
                for name in BENCHMARKS:
                    # timer-batch size = measured handler requests per
                    # interrupt per node, from the timed 75 MHz exec runs
                    ref = exec_results_75mhz[name, 1]
                    per_node = ref.traffic_matrix.shape[0]
                    handler_requests = max(
                        1,
                        round(
                            ref.requests_by_kind["kernel_timer"]
                            / max(1, ref.interrupts)
                            / per_node
                        ),
                    )
                    params = derive_batch_params(
                        characterizations[name],
                        timer_rate=1.0 / interval,
                        timer_batch=handler_requests,
                    )
                    batches[name] = _batch_runtimes(params, with_os)
                out[clock, with_os] = _stats(exec_results, batches)
        return out

    out = once(benchmark, run)
    rows = [
        [clock, "with OS model" if with_os else "no OS model", r, rmse]
        for (clock, with_os), (r, rmse) in out.items()
    ]
    text = format_table(
        ["clock", "model", "pearson_r", "rmse_vs_exec"],
        rows,
        title="Figure 22 - correlation with/without kernel-traffic modelling",
    ) + (
        "\npaper: 3GHz 0.954 -> 0.972; 75MHz 0.705 -> 0.931 (the OS model "
        "matters most where timer traffic dominates)"
    )
    emit("fig22_os_model_correlation", text)
    for (clock, with_os), (r, rmse) in out.items():
        benchmark.extra_info[f"{clock}_{'os' if with_os else 'base'}_r"] = r
    # the OS model must not hurt, and must help at 75 MHz
    assert out["75MHz", True][1] <= out["75MHz", False][1] + 0.02
    assert out["3GHz", True][1] <= out["3GHz", False][1] + 0.05
    assert out["75MHz", True][0] >= out["75MHz", False][0] - 0.02
