"""Figure 7: per-node batch runtime across the chip, mesh vs torus.

Paper: on the (edge-asymmetric) mesh the nodes near the center finish much
faster than the outer nodes; on the edge-symmetric torus all nodes finish
at nearly the same time — which is why the mesh loses to the torus in
worst-case (runtime) terms even with lower average latency.
"""

from __future__ import annotations

from conftest import BATCH_SIZE, emit, once

from repro.analysis import format_matrix
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.metrics import runtime_map


def test_fig07_node_runtime_map(benchmark):
    def run():
        maps = {}
        for topo in ("mesh", "torus"):
            cfg = NetworkConfig(topology=topo, num_vcs=4)
            res = BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=4).run()
            maps[topo] = runtime_map(res.node_finish, 8)
        return maps

    maps = once(benchmark, run)
    mesh, torus = maps["mesh"], maps["torus"]
    text = (
        format_matrix(mesh, title="Figure 7(a) - mesh normalized runtime (dark = slow)")
        + "\n\n"
        + format_matrix(torus, title="Figure 7(b) - torus normalized runtime")
        + f"\n\nmesh:  center {mesh[3:5, 3:5].mean():.3f}  corners "
        f"{(mesh[0,0]+mesh[0,7]+mesh[7,0]+mesh[7,7])/4:.3f}  spread "
        f"{mesh.max()-mesh.min():.3f}\n"
        f"torus: spread {torus.max()-torus.min():.3f}\n"
        "paper: mesh center finishes much faster than edges; torus flat"
    )
    emit("fig07_node_runtime_map", text)
    center = mesh[3:5, 3:5].mean()
    corners = (mesh[0, 0] + mesh[0, 7] + mesh[7, 0] + mesh[7, 7]) / 4
    assert center < corners
    assert (torus.max() - torus.min()) < (mesh.max() - mesh.min())
    benchmark.extra_info["mesh_spread"] = float(mesh.max() - mesh.min())
    benchmark.extra_info["torus_spread"] = float(torus.max() - torus.min())
