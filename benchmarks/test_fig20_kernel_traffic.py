"""Figure 20: kernel vs user network traffic per benchmark and clock.

Paper: kernel activity contributes a significant share of the network
traffic (over 80% for lu at 75 MHz), and the share is much larger at the
Simics-default 75 MHz than at 3 GHz because the timer-interrupt interval is
fixed in wall-clock time, not cycles.
"""

from __future__ import annotations

from conftest import TR_VALUES, emit

from repro.analysis import format_table
from repro.execdriven import BENCHMARKS


def test_fig20_kernel_traffic(benchmark, exec_results_3ghz, exec_results_75mhz):
    def collect():
        rows = []
        shares = {}
        for clock, results in (("75MHz", exec_results_75mhz), ("3GHz", exec_results_3ghz)):
            for name in BENCHMARKS:
                for tr in TR_VALUES:
                    res = results[name, tr]
                    rows.append(
                        [clock, name, tr, res.nar, res.kernel_fraction, res.interrupts]
                    )
                shares[clock, name] = results[name, 1].kernel_fraction
        return rows, shares

    rows, shares = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = format_table(
        ["clock", "benchmark", "tr", "inj_rate", "kernel_share", "interrupts"],
        rows,
        precision=3,
        title="Figure 20 - network injection rate split into kernel vs user",
    ) + (
        "\npaper: kernel share significant everywhere, far larger at 75MHz "
        "(timer interval fixed in wall-clock time); lu's kernel share is "
        "among the highest"
    )
    emit("fig20_kernel_traffic", text)
    for name in BENCHMARKS:
        assert shares["75MHz", name] > shares["3GHz", name]
        assert shares["75MHz", name] > 0.4
        assert shares["3GHz", name] > 0.05
