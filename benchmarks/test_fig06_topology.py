"""Figure 6: topology comparison (mesh / folded torus / ring, 64 nodes).

Paper: open loop — ring has highest latency and lowest throughput; torus
has slightly higher zero-load latency than the mesh (folded links) but the
highest throughput (highest bisection).  Batch — same trends, except at
small m the mesh's edge-asymmetry makes it *slower* than the torus despite
its lower average latency (Fig. 7 explains why).

We run 4 VCs: with the 2-VC baseline the torus's dateline classes starve
its VC budget and it saturates below its bisection advantage (documented
in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest
from conftest import BATCH_SIZE, OPENLOOP, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator

TOPOLOGIES = ("mesh", "torus", "ring")
M_VALUES = (1, 4, 16, 32)


def test_fig06a_openloop(benchmark):
    def run():
        out = {}
        for topo in TOPOLOGIES:
            sim = OpenLoopSimulator(NetworkConfig(topology=topo, num_vcs=4), **OPENLOOP)
            out[topo] = (
                sim.zero_load_latency(),
                sim.saturation_throughput(tolerance=0.02),
            )
        return out

    out = once(benchmark, run)
    rows = [[t, out[t][0], out[t][1]] for t in TOPOLOGIES]
    text = format_table(
        ["topology", "zero_load_latency", "saturation_throughput"],
        rows,
        title="Figure 6(a) - topology comparison, open loop (64 nodes, 4 VCs)",
    ) + (
        "\npaper: ring worst latency+throughput; torus zero-load slightly > "
        "mesh (folded links) but highest throughput"
    )
    emit("fig06a_topology_openloop", text)
    zl = {t: out[t][0] for t in TOPOLOGIES}
    sat = {t: out[t][1] for t in TOPOLOGIES}
    assert zl["ring"] > zl["torus"] > zl["mesh"]
    assert sat["ring"] < sat["mesh"] < sat["torus"]


def test_fig06b_batch(benchmark):
    def run():
        out = {}
        for topo in TOPOLOGIES:
            cfg = NetworkConfig(topology=topo, num_vcs=4)
            for m in M_VALUES:
                res = BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=m).run()
                out[topo, m] = (res.runtime, res.throughput)
        return out

    out = once(benchmark, run)
    base = out["mesh", 1][0]
    rows = [
        [m] + [out[t, m][0] / base for t in TOPOLOGIES] + [out[t, m][1] for t in TOPOLOGIES]
        for m in M_VALUES
    ]
    text = format_table(
        ["m"] + [f"T {t}" for t in TOPOLOGIES] + [f"theta {t}" for t in TOPOLOGIES],
        rows,
        precision=3,
        title="Figure 6(b) - topology comparison, batch model (normalized to mesh m=1)",
    ) + (
        "\npaper: ring slowest at all m; at small m the mesh is *slower* "
        "than the torus (worst-case corner nodes). Deviation: at large m "
        "our torus stays round-trip-limited (folded 2-cycle links against "
        "a 3-cycle credit loop) and does not overtake the mesh by m=32 the "
        "way the paper's does; its advantage shows in open loop (Fig 6a)."
    )
    emit("fig06b_topology_batch", text)
    for m in M_VALUES:
        assert out["ring", m][0] > out["mesh", m][0]
        assert out["ring", m][0] > out["torus", m][0]
    # the paper's small-m headline: mesh runtime exceeds torus runtime even
    # though the mesh's average latency is lower (worst-case corner nodes)
    assert out["mesh", 1][0] > out["torus", 1][0]
