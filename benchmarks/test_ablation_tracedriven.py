"""Ablation: trace-driven replay vs closed-loop simulation (paper §II).

The paper dismisses trace-driven evaluation because "feedback from the
network does not affect the workload and ignores the causality of
messages".  This ablation quantifies the failure: a trace captured from a
tr=1 closed-loop run, replayed on tr=2/4/8 networks, shows almost no
runtime growth — while the true closed-loop runtime grows ~1.5/2.4/4.3x.
Replay does report higher *latency* (it is a fine open-loop-style probe),
it just cannot see the system-level slowdown.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.tracedriven import TraceDrivenSimulator, capture_batch_trace

TRS = (1, 2, 4, 8)
B = 60


def test_ablation_tracedriven(benchmark):
    base = NetworkConfig()

    def run():
        trace = capture_batch_trace(base, batch_size=B, max_outstanding=1)
        rows = {}
        for tr in TRS:
            cfg = base.with_(router_delay=tr)
            replay = TraceDrivenSimulator(cfg, trace).run()
            closed = BatchSimulator(cfg, batch_size=B, max_outstanding=1).run()
            rows[tr] = (replay.runtime, replay.avg_latency, closed.runtime)
        return rows

    rows = once(benchmark, run)
    base_rt, base_lat, base_closed = rows[1]
    table = format_table(
        ["tr", "replay_runtime", "replay_latency", "closedloop_runtime"],
        [
            [tr, rt / base_rt, lat / base_lat, cl / base_closed]
            for tr, (rt, lat, cl) in rows.items()
        ],
        precision=2,
        title="Ablation - trace replay vs closed loop (normalized to tr=1)",
    )
    text = table + (
        "\ntrace replay keeps injecting at the reference (tr=1) schedule: "
        "it sees the latency increase but not the runtime slowdown the "
        "closed-loop feedback produces - the paper's SII causality argument"
    )
    emit("ablation_tracedriven", text)
    replay_ratio = rows[8][0] / base_rt
    closed_ratio = rows[8][2] / base_closed
    latency_ratio = rows[8][1] / base_lat
    assert replay_ratio < 1.3
    assert closed_ratio > 3.0
    assert latency_ratio > 2.0
    benchmark.extra_info["replay_tr8_ratio"] = replay_ratio
    benchmark.extra_info["closedloop_tr8_ratio"] = closed_ratio
