"""Ablation: credit-return delay vs the buffer-depth knee (Fig. 3b context).

EXPERIMENTS.md documents one deviation from the paper: our buffer-size
knee sits at q=2 where the paper's sat at q=4, because our credit loop is
shorter than their router pipeline's.  This ablation demonstrates the
mechanism directly: lengthening ``credit_delay`` moves the knee to deeper
buffers, reproducing the paper's qualitative q sensitivity at q=4.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator

QS = (1, 2, 4, 8)
CREDIT_DELAYS = (1, 4)
OL = dict(warmup=250, measure=500, drain_limit=2500)


def test_ablation_credit_delay(benchmark):
    def run():
        out = {}
        for cd in CREDIT_DELAYS:
            for q in QS:
                cfg = NetworkConfig(vc_buffer_size=q, credit_delay=cd)
                sim = OpenLoopSimulator(cfg, **OL)
                out[cd, q] = sim.saturation_throughput(tolerance=0.02)
        return out

    out = once(benchmark, run)
    rows = [[f"cd={cd}"] + [out[cd, q] for q in QS] for cd in CREDIT_DELAYS]
    # knee = smallest q within 5% of the deep-buffer saturation
    knees = {}
    for cd in CREDIT_DELAYS:
        deep = out[cd, QS[-1]]
        knees[cd] = next(q for q in QS if out[cd, q] >= 0.95 * deep)
    text = format_table(
        ["credit_delay"] + [f"q={q}" for q in QS],
        rows,
        title="Ablation - saturation throughput vs buffer depth and credit delay",
    ) + (
        f"\nbuffer knee (95% of deep-buffer throughput): cd=1 -> q={knees[1]}, "
        f"cd=4 -> q={knees[4]}\n"
        "a longer credit loop starves shallower buffers - the paper's q=4 "
        "knee implies its router pipeline + credit path was ~5-6 cycles"
    )
    emit("ablation_credit_delay", text)
    assert knees[4] > knees[1]
    # with cd=4, q=4 is measurably below deep buffers (the paper's regime)
    assert out[4, 4] < 0.97 * out[4, 8]
