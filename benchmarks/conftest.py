"""Shared machinery for the per-figure benchmark harnesses.

Every ``test_fig*`` / ``test_table*`` file regenerates one table or figure
from the paper: it runs the (scaled-down) experiment, prints the same
rows/series the paper reports alongside the paper's reference values, and
saves the text under ``benchmarks/results/`` for EXPERIMENTS.md.

Scaling: the paper uses b = 1000 batches, 64-node open-loop runs with long
steady-state windows, and multi-day GEMS simulations.  The harness defaults
below shrink batch sizes, measurement windows and instruction counts so the
whole suite finishes in tens of minutes of pure Python; every knob is a
module constant, so paper-scale reruns are one edit away.

Expensive execution-driven sweeps are shared across figures through
session-scoped fixtures (Fig. 14/15/18/19 all consume the same runs).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import CmpConfig, NetworkConfig
from repro.execdriven import (
    BENCHMARKS,
    TIMER_INTERVAL_3GHZ,
    TIMER_INTERVAL_75MHZ,
    CmpSystem,
    characterize,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# --- scaled experiment sizes (paper-scale values in comments) ---------------
BATCH_SIZE = 150          # paper: b = 1000
OPENLOOP = dict(warmup=300, measure=600, drain_limit=3000)  # paper: >=10k cycle windows
EXEC_INSTRUCTIONS = 6000  # surrogate benchmarks; paper: full SPLASH-2/PARSEC
EXEC_INSTRUCTIONS_75MHZ = 4000
M_VALUES = (1, 2, 4, 8, 16, 32)
TR_VALUES = (1, 2, 4, 8)


def emit(name: str, text: str) -> None:
    """Print a figure's output and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_collection_modifyitems(items):
    """Every figure/table harness is a multi-second simulation: mark them all
    ``slow`` so ``pytest -m "not slow"`` gives the quick tier-1 loop even when
    benchmarks/ is on the command line."""
    for item in items:
        item.add_marker(pytest.mark.slow)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These harnesses regenerate figures; statistical re-timing of a
    multi-second simulation adds nothing, so rounds=iterations=1.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def cmp_config(tr: int) -> CmpConfig:
    """Table II CMP configuration at router delay ``tr``."""
    return CmpConfig(
        network=NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
    )


@pytest.fixture(scope="session")
def exec_results_3ghz():
    """CmpResult per (benchmark, tr) at the 3 GHz timer configuration."""
    out = {}
    for name, factory in BENCHMARKS.items():
        for tr in TR_VALUES:
            system = CmpSystem(
                factory(EXEC_INSTRUCTIONS),
                cmp_config(tr),
                timer_interval=TIMER_INTERVAL_3GHZ,
                seed=2,
            )
            out[name, tr] = system.run()
    return out


@pytest.fixture(scope="session")
def exec_results_75mhz():
    """CmpResult per (benchmark, tr) at the 75 MHz (Simics default) timer."""
    out = {}
    for name, factory in BENCHMARKS.items():
        for tr in TR_VALUES:
            system = CmpSystem(
                factory(EXEC_INSTRUCTIONS_75MHZ),
                cmp_config(tr),
                timer_interval=TIMER_INTERVAL_75MHZ,
                seed=2,
            )
            out[name, tr] = system.run()
    return out


@pytest.fixture(scope="session")
def characterizations():
    """Timer-free ideal-network characterization per benchmark.

    Running without the timer keeps the Table III/IV NAR and miss-rate
    columns clean; the Rtimer column comes from the timed 75 MHz exec runs
    (``exec_results_75mhz``), and the OS-extended batch model receives its
    timer rate explicitly via ``derive_batch_params(..., timer_rate=...)``.
    """
    return {
        name: characterize(factory(EXEC_INSTRUCTIONS), seed=2)
        for name, factory in BENCHMARKS.items()
    }
