"""Shared machinery for the per-figure benchmark harnesses.

Every ``test_fig*`` / ``test_table*`` file regenerates one table or figure
from the paper: it runs the (scaled-down) experiment, prints the same
rows/series the paper reports alongside the paper's reference values, and
saves the text under ``benchmarks/results/`` for EXPERIMENTS.md.

Scaling: the paper uses b = 1000 batches, 64-node open-loop runs with long
steady-state windows, and multi-day GEMS simulations.  The harness defaults
below shrink batch sizes, measurement windows and instruction counts so the
whole suite finishes in tens of minutes of pure Python; every knob is a
module constant, so paper-scale reruns are one edit away.

Expensive execution-driven sweeps are shared across figures through
session-scoped fixtures (Fig. 14/15/18/19 all consume the same runs).
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

import numpy as np
import pytest

from repro.config import CmpConfig, NetworkConfig
from repro.core.cache import ResultCache, cache_disabled, fingerprint
from repro.execdriven import (
    BENCHMARKS,
    TIMER_INTERVAL_3GHZ,
    TIMER_INTERVAL_75MHZ,
    CmpResult,
    CmpSystem,
    characterize,
)
from repro.execdriven.characterize import Characterization

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# --- scaled experiment sizes (paper-scale values in comments) ---------------
BATCH_SIZE = 150          # paper: b = 1000
OPENLOOP = dict(warmup=300, measure=600, drain_limit=3000)  # paper: >=10k cycle windows
EXEC_INSTRUCTIONS = 6000  # surrogate benchmarks; paper: full SPLASH-2/PARSEC
EXEC_INSTRUCTIONS_75MHZ = 4000
M_VALUES = (1, 2, 4, 8, 16, 32)
TR_VALUES = (1, 2, 4, 8)


def emit(name: str, text: str) -> None:
    """Print a figure's output and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_collection_modifyitems(items):
    """Every figure/table harness is a multi-second simulation: mark them all
    ``slow`` so ``pytest -m "not slow"`` gives the quick tier-1 loop even when
    benchmarks/ is on the command line."""
    for item in items:
        item.add_marker(pytest.mark.slow)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These harnesses regenerate figures; statistical re-timing of a
    multi-second simulation adds nothing, so rounds=iterations=1.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def cmp_config(tr: int) -> CmpConfig:
    """Table II CMP configuration at router delay ``tr``."""
    return CmpConfig(
        network=NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
    )


# --- content-addressed result cache (repro.core.cache) ----------------------
#
# The execution-driven session fixtures dominate the suite's wall time and
# are pure functions of (benchmark, tr, instructions, timer, seed) plus the
# simulation source — exactly what the cache fingerprints.  A warm cache
# turns the whole figure pipeline into replay; the code-version salt
# invalidates every entry the moment simulation-relevant source changes.

_NDARRAY_FIELDS = ("timeline", "traffic_matrix", "logical_matrix")


def _encode_cmp_result(res: CmpResult) -> dict:
    rec = dataclasses.asdict(res)
    for name in _NDARRAY_FIELDS:
        arr = rec[name]
        rec[name] = {"data": arr.tolist(), "dtype": str(arr.dtype)}
    rec.pop("probe_records")  # always empty here; lists don't round-trip JSON-checked
    return rec


def _decode_cmp_result(rec: dict) -> CmpResult:
    rec = dict(rec)
    for name in _NDARRAY_FIELDS:
        spec = rec[name]
        rec[name] = np.array(spec["data"], dtype=spec["dtype"])
    rec["flits_by_class"] = {int(k): v for k, v in rec["flits_by_class"].items()}
    rec["l2_miss_by_class"] = {int(k): v for k, v in rec["l2_miss_by_class"].items()}
    return CmpResult(probe_records=[], **rec)


@pytest.fixture(scope="session")
def figure_cache():
    """Session result cache for the figure pipeline (None when disabled).

    Lives under ``$REPRO_CACHE_DIR`` (CI restores it keyed on the code
    fingerprint) or ``benchmarks/.cache`` locally; ``REPRO_NO_CACHE=1``
    turns it off entirely.  Hit/miss counters flush to ``stats.json`` at
    session end so ``repro cache stats`` reports them.
    """
    if cache_disabled():
        yield None
        return
    root = os.environ.get("REPRO_CACHE_DIR") or str(pathlib.Path(__file__).parent / ".cache")
    cache = ResultCache(root)
    yield cache
    cache.flush_stats()


def _memoized(cache, context: str, params: dict, compute, encode, decode):
    """Content-addressed memoization of one deterministic computation."""
    if cache is None:
        return compute()
    key = fingerprint({"context": context, "params": params})
    hit = cache.get(key)
    if hit is not None:
        return decode(hit)
    value = compute()
    cache.put(key, encode(value), {"context": context, "params": params})
    return value


def _exec_results(cache, context: str, instructions: int, timer_interval: int) -> dict:
    out = {}
    for name, factory in BENCHMARKS.items():
        for tr in TR_VALUES:
            out[name, tr] = _memoized(
                cache,
                context,
                {
                    "benchmark": name,
                    "tr": tr,
                    "instructions": instructions,
                    "timer_interval": timer_interval,
                    "seed": 2,
                },
                lambda: CmpSystem(
                    factory(instructions),
                    cmp_config(tr),
                    timer_interval=timer_interval,
                    seed=2,
                ).run(),
                _encode_cmp_result,
                _decode_cmp_result,
            )
    return out


@pytest.fixture(scope="session")
def exec_results_3ghz(figure_cache):
    """CmpResult per (benchmark, tr) at the 3 GHz timer configuration."""
    return _exec_results(
        figure_cache, "benchmarks.exec_results_3ghz", EXEC_INSTRUCTIONS, TIMER_INTERVAL_3GHZ
    )


@pytest.fixture(scope="session")
def exec_results_75mhz(figure_cache):
    """CmpResult per (benchmark, tr) at the 75 MHz (Simics default) timer."""
    return _exec_results(
        figure_cache,
        "benchmarks.exec_results_75mhz",
        EXEC_INSTRUCTIONS_75MHZ,
        TIMER_INTERVAL_75MHZ,
    )


@pytest.fixture(scope="session")
def characterizations(figure_cache):
    """Timer-free ideal-network characterization per benchmark.

    Running without the timer keeps the Table III/IV NAR and miss-rate
    columns clean; the Rtimer column comes from the timed 75 MHz exec runs
    (``exec_results_75mhz``), and the OS-extended batch model receives its
    timer rate explicitly via ``derive_batch_params(..., timer_rate=...)``.
    """
    return {
        name: _memoized(
            figure_cache,
            "benchmarks.characterizations",
            {"benchmark": name, "instructions": EXEC_INSTRUCTIONS, "seed": 2},
            lambda: characterize(factory(EXEC_INSTRUCTIONS), seed=2),
            dataclasses.asdict,
            lambda rec: Characterization(**rec),
        )
        for name, factory in BENCHMARKS.items()
    }
