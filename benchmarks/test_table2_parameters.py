"""Table II: the Simics/GEMS+Garnet machine configuration.

Prints the configuration and validates that our CMP substrate is built to
exactly these parameters.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table
from repro.config import TABLE_II_PARAMETERS, CmpConfig


def test_table2_parameters(benchmark):
    cfg = once(benchmark, CmpConfig)
    rows = [[k, v] for k, v in TABLE_II_PARAMETERS.items()]
    text = format_table(
        ["component", "configuration"],
        rows,
        title="Table II - Simics/GEMS+Garnet simulation parameters",
    ) + (
        f"\n\nsubstrate: {cfg.num_cores} cores, L1 "
        f"{cfg.l1_lines * cfg.line_bytes // 1024} KB {cfg.l1_assoc}-way "
        f"{cfg.l1_latency}-cycle, L2 "
        f"{cfg.l2_lines_per_tile * cfg.line_bytes // 1024} KB/tile "
        f"{cfg.l2_latency}-cycle, DRAM {cfg.memory_latency}-cycle, "
        f"{cfg.network.k}x{cfg.network.k} mesh, {cfg.network.num_vcs} VCs x "
        f"{cfg.network.vc_buffer_size} bufs, {cfg.mshrs} MSHRs"
    )
    emit("table2_parameters", text)
    assert cfg.num_cores == 16
    assert cfg.l1_lines * cfg.line_bytes == 32 * 1024
    assert cfg.l2_lines_per_tile * cfg.line_bytes == 512 * 1024
    assert cfg.memory_latency == 300
    assert cfg.network.num_vcs == 8
