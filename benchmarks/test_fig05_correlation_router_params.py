"""Figure 5: batch-model vs open-loop scatter for router delay and buffers.

Paper's steps 1-4 of SIII-B: run the batch model, convert runtime to an
achieved load theta = 2b/T, measure the open-loop latency at that offered
load, normalize both per-m, scatter and correlate.  Excluding the
near-saturation m=16/32 points (where open-loop latency is ill-conditioned)
the paper reports r = 0.9953 for tr and 0.9935 for q.
"""

from __future__ import annotations

from conftest import BATCH_SIZE, OPENLOOP, emit, once

from repro.analysis import ascii_scatter, format_table
from repro.config import NetworkConfig
from repro.core.correlation import batch_vs_openloop

M_ALL = (1, 2, 4, 8, 16, 32)


def _study(configs, benchmark):
    def run():
        return batch_vs_openloop(
            configs,
            m_values=M_ALL,
            batch_size=BATCH_SIZE,
            openloop_kwargs=OPENLOOP,
        )

    return once(benchmark, run)


def _report(name, title, res, paper_r):
    filtered = res.filtered(lambda p: p.group not in (16, 32))
    rows = [[p.key[0], p.key[1], p.x, p.y] for p in res.pairs]
    table = format_table(
        ["config", "m", "openloop_norm_latency", "batch_norm_runtime"],
        rows,
        title=title,
    )
    scatter = ascii_scatter(
        [(p.x, p.y) for p in filtered.pairs],
        xlabel="open-loop normalized latency",
        ylabel="batch normalized runtime",
    )
    text = (
        f"{table}\n\n{scatter}\n"
        f"r (all m) = {res.r:.4f}; r (excluding m=16,32) = {filtered.r:.4f} "
        f"(paper: {paper_r})"
    )
    emit(name, text)
    return filtered


def test_fig05a_router_delay_correlation(benchmark):
    base = NetworkConfig()
    configs = [(f"tr={tr}", base.with_(router_delay=tr)) for tr in (1, 2, 4)]
    res = _study(configs, benchmark)
    filtered = _report(
        "fig05a_correlation_router_delay",
        "Figure 5(a) - batch vs open-loop, router delay",
        res,
        "0.9953",
    )
    benchmark.extra_info["r"] = filtered.r
    assert filtered.r > 0.95


def test_fig05b_buffer_correlation(benchmark):
    """Deviation note: in our router, buffer starvation is a throughput
    cliff with no latency precursor (3-cycle credit loop), so the paper's
    latency-at-matched-load pairing carries no q signal once the
    near-saturation m values are excluded — the remaining ratios are ±3%
    noise.  The underlying claim ("open-loop and batch measurements show
    the same impact of q") is checked the way the q effect actually
    manifests here: open-loop saturation throughput against batch-model
    achieved throughput at high m, per buffer depth.
    """
    from conftest import BATCH_SIZE, OPENLOOP

    from repro.core.closedloop import BatchSimulator
    from repro.core.correlation import pearson
    from repro.core.openloop import OpenLoopSimulator

    base = NetworkConfig()
    qs = (1, 2, 4, 16)

    def run():
        sat, theta = [], []
        for q in qs:
            cfg = base.with_(vc_buffer_size=q)
            sat.append(
                OpenLoopSimulator(cfg, **OPENLOOP).saturation_throughput(tolerance=0.02)
            )
            theta.append(
                BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=32)
                .run()
                .throughput
            )
        return sat, theta

    sat, theta = once(benchmark, run)
    r = pearson(sat, theta)
    rows = [[f"q={q}", s, t] for q, s, t in zip(qs, sat, theta)]
    table = format_table(
        ["config", "openloop_saturation", "batch_theta_m32"],
        rows,
        title="Figure 5(b) - buffer-size impact agreement, open loop vs batch",
    )
    text = (
        f"{table}\n"
        f"r(open-loop saturation, batch achieved throughput) = {r:.4f} "
        f"(paper pairs latency-at-matched-load, r = 0.993546; see deviation "
        f"note in the docstring / EXPERIMENTS.md)"
    )
    emit("fig05b_correlation_buffer", text)
    benchmark.extra_info["r"] = r
    assert r > 0.9
