"""Figure 8: topology correlation using worst-case open-loop latency.

Paper: pairing the batch runtime against the open-loop *worst-case node*
latency (instead of the average) restores the correlation across
mesh/torus/ring to r = 0.999 — because the closed-loop runtime is a
worst-case metric (decided by the slowest node).
"""

from __future__ import annotations

from conftest import BATCH_SIZE, OPENLOOP, emit, once

from repro.analysis import ascii_scatter, format_table
from repro.config import NetworkConfig
from repro.core.correlation import batch_vs_openloop


def test_fig08_topology_correlation(benchmark):
    configs = [
        (topo, NetworkConfig(topology=topo, num_vcs=4))
        for topo in ("mesh", "torus", "ring")
    ]

    def run():
        worst = batch_vs_openloop(
            configs,
            m_values=(1, 2, 4, 8),
            batch_size=BATCH_SIZE,
            baseline_key="mesh",
            worst_case=True,
            openloop_kwargs=OPENLOOP,
        )
        avg = batch_vs_openloop(
            configs,
            m_values=(1, 2, 4, 8),
            batch_size=BATCH_SIZE,
            baseline_key="mesh",
            worst_case=False,
            openloop_kwargs=OPENLOOP,
        )
        return worst, avg

    worst, avg = once(benchmark, run)
    rows = [[p.key[0], p.key[1], p.x, p.y] for p in worst.pairs]
    table = format_table(
        ["topology", "m", "worstcase_norm_latency", "batch_norm_runtime"],
        rows,
        title="Figure 8 - topology correlation (worst-case open-loop latency)",
    )
    scatter = ascii_scatter(
        [(p.x, p.y) for p in worst.pairs],
        xlabel="open-loop worst-case latency (norm)",
        ylabel="batch runtime (norm)",
    )
    text = (
        f"{table}\n\n{scatter}\n"
        f"r (worst-case pairing) = {worst.r:.4f} (paper: 0.999)\n"
        f"r (average pairing)    = {avg.r:.4f} (paper: poor - average "
        f"latency misses the mesh's slow corner nodes)"
    )
    emit("fig08_topology_correlation", text)
    benchmark.extra_info["r_worst"] = worst.r
    benchmark.extra_info["r_avg"] = avg.r
    assert worst.r > 0.9
    assert worst.r >= avg.r - 0.02
