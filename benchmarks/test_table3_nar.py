"""Table III: benchmark characterization under the ideal network.

Paper columns: ideal cycle count, total flits, NAR, L2 miss rate.  Our
surrogates are calibrated to the paper's per-benchmark operating points;
this harness measures them end-to-end (real caches, real streams) and
prints measured-vs-paper.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table

PAPER = {
    # bench: (nar, l2_miss)
    "blackscholes": (0.028, 0.006),
    "lu": (0.011, 0.183),
    "canneal": (0.040, 0.207),
    "fft": (0.033, 0.629),
    "barnes": (0.047, 0.019),
}


def test_table3_nar(benchmark, characterizations):
    ch = once(benchmark, lambda: characterizations)
    rows = []
    for name, c in ch.items():
        p_nar, p_l2 = PAPER[name]
        rows.append(
            [name, c.ideal_cycles, c.total_flits, c.nar, p_nar, c.l2_miss_rate, p_l2]
        )
    text = format_table(
        ["benchmark", "ideal_cycles", "total_flits", "NAR", "NAR(paper)",
         "L2_miss", "L2_miss(paper)"],
        rows,
        precision=3,
        title="Table III - benchmark characterization (ideal network)",
    ) + (
        "\nnote: cycle/flit counts are ~1200x scaled-down surrogates; rates "
        "(NAR, miss ratios) are the calibrated quantities"
    )
    emit("table3_nar", text)
    # orderings the paper's models depend on
    assert ch["barnes"].nar == max(c.nar for c in ch.values())
    assert ch["fft"].user_l2_miss == max(c.user_l2_miss for c in ch.values())
    assert ch["blackscholes"].user_l2_miss == min(c.user_l2_miss for c in ch.values())
    for name, c in ch.items():
        p_nar, p_l2 = PAPER[name]
        # Table III blends user and kernel requests; our kernel requests
        # are mostly L2-resident, pulling lu's blended rate above the
        # paper's (whose Table III/IV L2 columns disagree by 2.3x for lu).
        assert abs(c.l2_miss_rate - p_l2) < 0.16, name
        assert 0.3 < c.nar / p_nar < 3.5, name
