"""Figure 12: example DOR and VAL routes for a transpose corner pair.

Paper: for the corner-to-corner source/destination of the transpose
pattern, VAL's random intermediate always falls in the minimal quadrant
(the whole mesh), so VAL routes minimally — the worst-case zero-load
latency of DOR and VAL is identical, explaining Fig. 10(b)/11.
"""

from __future__ import annotations

from conftest import emit, once

from repro.config import NetworkConfig
from repro.network.packet import Packet
from repro.routing import DOR, Valiant
from repro.topology import Mesh


def _walk(routing, topo, pkt):
    node, path = pkt.src, [pkt.src]
    for _ in range(100):
        cands = routing.route(node, pkt)
        if cands[0].out_port == topo.local_port:
            return path
        node = topo.channel(node, cands[0].out_port).dst
        path.append(node)
    raise AssertionError("route did not terminate")


def test_fig12_routing_example(benchmark):
    topo = Mesh(8, 2)
    src, dst = 7, 56  # (7,0) -> (0,7): the transpose corner pair

    def run():
        dor = DOR(topo, 2)
        val = Valiant(topo, 2, seed=4)
        dor_path = _walk(dor, topo, Packet(0, src, dst, 1, 0))
        val_paths = []
        for pid in range(200):
            pkt = Packet(pid, src, dst, 1, 0)
            val.on_inject(pkt)
            val_paths.append((pkt.intermediate, _walk(val, topo, pkt)))
        return dor_path, val_paths

    dor_path, val_paths = once(benchmark, run)
    min_hops = topo.min_hops(src, dst)
    val_hops = [len(p) - 1 for _, p in val_paths]
    coords = lambda path: " -> ".join(str(topo.coords(n)) for n in path)  # noqa: E731
    inter, sample = val_paths[0]
    text = (
        f"Figure 12 - transpose corner pair S={topo.coords(src)} "
        f"D={topo.coords(dst)} (8x8 mesh)\n\n"
        f"DOR route  ({len(dor_path) - 1} hops): {coords(dor_path)}\n\n"
        f"VAL sample (intermediate {topo.coords(inter)}, "
        f"{len(sample) - 1} hops): {coords(sample)}\n\n"
        f"minimal hops = {min_hops}; over 200 VAL draws: min "
        f"{min(val_hops)}, max {max(val_hops)} hops\n"
        "paper: every VAL intermediate lies in the minimal quadrant for "
        "this pair, so VAL remains minimal -> identical worst-case "
        "zero-load latency to DOR"
    )
    emit("fig12_routing_example", text)
    assert len(dor_path) - 1 == min_hops
    assert all(h == min_hops for h in val_hops)
