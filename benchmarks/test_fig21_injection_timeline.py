"""Figure 21: blackscholes injection-rate timeline, 75 MHz vs 3 GHz.

Paper: both clocks show big kernel bursts at program start and end (thread
creation / teardown syscalls); the 75 MHz run additionally shows many small
periodic peaks from timer interrupts (hundreds vs ~6 at 3 GHz).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis import ascii_plot
from repro.execdriven import KERNEL, USER


def _series(res):
    scale = res.timeline_bucket * 16  # flits/cycle (16 nodes aggregated)
    user = res.timeline[USER] / res.timeline_bucket
    kern = res.timeline[KERNEL] / res.timeline_bucket
    t = np.arange(user.size) * res.timeline_bucket
    return t, user, kern, scale


def test_fig21_injection_timeline(benchmark, exec_results_3ghz, exec_results_75mhz):
    def collect():
        return exec_results_75mhz["blackscholes", 1], exec_results_3ghz["blackscholes", 1]

    slow, fast = benchmark.pedantic(collect, rounds=1, iterations=1)
    parts = []
    for label, res in (("75 MHz", slow), ("3 GHz", fast)):
        t, user, kern, _ = _series(res)
        parts.append(
            ascii_plot(
                {
                    "user": list(zip(t, user)),
                    "kernel": list(zip(t, kern)),
                },
                width=70,
                height=12,
                title=f"Figure 21 - blackscholes injection rate, {label} "
                f"({res.interrupts} timer interrupts)",
                xlabel="cycle",
                ylabel="flits/cycle (all nodes)",
            )
        )
    text = "\n\n".join(parts) + (
        f"\n\ntimer interrupts: 75MHz {slow.interrupts}, 3GHz "
        f"{fast.interrupts} (paper: hundreds vs ~6)\n"
        "kernel bursts at start and end come from the spawn/join syscall "
        "phases (thread creation / synchronization)"
    )
    emit("fig21_injection_timeline", text)
    assert slow.interrupts > 10 * max(fast.interrupts, 1)
    # start/end kernel bursts (spawn/join syscalls) dominate the 3 GHz
    # kernel timeline, where timer traffic is negligible; at 75 MHz the
    # periodic timer peaks fill the middle of the run instead.
    kern = fast.timeline[KERNEL].astype(float)
    n = kern.size
    edges = kern[: max(1, n // 5)].sum() + kern[-max(1, n // 5):].sum()
    assert edges > 0.5 * kern.sum()
    # and at 75 MHz kernel traffic persists through the middle of the run
    mid = slow.timeline[KERNEL].astype(float)
    m5 = max(1, mid.size // 5)
    assert mid[m5:-m5].sum() > 0.3 * mid.sum()
