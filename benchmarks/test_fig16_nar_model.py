"""Figure 16: the batch model with the enhanced (NAR) injection model.

Paper: as NAR falls, the impact of router delay on runtime shrinks; at
NAR = 1 the baseline batch model is recovered.  Notably, at large m and
small NAR the workload is not communication-limited, so tr has minimal
impact even though it raises packet latency.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator

NARS = (0.04, 0.12, 0.2, 0.36, 1.0)
TRS = (1, 2, 4)
MS = (1, 4, 16)
B = 100


def test_fig16_nar_model(benchmark):
    def run():
        out = {}
        for m in MS:
            for nar in NARS:
                for tr in TRS:
                    cfg = NetworkConfig(router_delay=tr)
                    res = BatchSimulator(
                        cfg, batch_size=B, max_outstanding=m, nar=nar
                    ).run()
                    out[m, nar, tr] = (res.runtime, res.throughput)
        return out

    out = once(benchmark, run)
    sections = []
    for m in MS:
        rows = []
        for nar in NARS:
            base = out[m, nar, 1][0]
            rows.append(
                [nar]
                + [out[m, nar, tr][0] / base for tr in TRS]
                + [out[m, nar, tr][1] for tr in TRS]
            )
        sections.append(
            format_table(
                ["NAR"] + [f"T tr={tr}" for tr in TRS] + [f"theta tr={tr}" for tr in TRS],
                rows,
                precision=3,
                title=f"Figure 16 (m={m}) - runtime normalized per-NAR to tr=1",
            )
        )
    tr4 = lambda m, nar: out[m, nar, 4][0] / out[m, nar, 1][0]  # noqa: E731
    text = "\n\n".join(sections) + (
        f"\n\ntr=4/tr=1 ratio at m=16: NAR=1 {tr4(16, 1.0):.2f} vs NAR=0.04 "
        f"{tr4(16, 0.04):.2f} (paper: low-NAR workloads are not "
        f"communication-limited, router delay nearly free)"
    )
    emit("fig16_nar_model", text)
    for m in MS:
        assert tr4(m, 0.04) < tr4(m, 1.0) + 0.05
    assert tr4(16, 0.04) == pytest.approx(1.0, abs=0.1)
    assert tr4(1, 1.0) == pytest.approx(2.5, abs=0.4)
