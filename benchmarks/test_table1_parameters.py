"""Table I: the open/closed-loop simulation parameter space.

Validates that every Table I point constructs a working configuration (the
sweep driver will accept any of them) and prints the table.
"""

from __future__ import annotations

from conftest import emit, once

from repro.analysis import format_table
from repro.config import TABLE_I_PARAMETER_SPACE, NetworkConfig
from repro.core.sweep import product_configs


def test_table1_parameters(benchmark):
    def build_space():
        axes = {
            "num_vcs": (2, 4),
            "vc_buffer_size": (1, 2, 4, 8, 16),
            "router_delay": (1, 2, 4, 8),
            "arbitration": ("round_robin", "age"),
            "packet_size": ("single", "bimodal"),
            "traffic": ("uniform_random", "bit_reversal", "bit_complement", "transpose"),
        }
        configs = product_configs(NetworkConfig(), axes)
        routed = [
            NetworkConfig(routing=alg) for alg in ("dor", "val", "ma", "romm")
        ]
        return configs, routed

    configs, routed = once(benchmark, build_space)
    rows = [[key, ", ".join(map(str, vals))] for key, vals in TABLE_I_PARAMETER_SPACE.items()]
    text = (
        format_table(["parameter", "values (bold=first)"], rows,
                     title="Table I - simulation parameters")
        + f"\n\nvalidated {len(configs)} config points x {len(routed)} routing algorithms"
    )
    emit("table1_parameters", text)
    assert len(configs) == 2 * 5 * 4 * 2 * 2 * 4
    assert len(routed) == 4
