"""Figure 10: batch-model routing comparison under uniform random and
transpose.

Paper's headline discrepancy: under transpose at m=1, VAL's much higher
*average* latency costs only ~1.7% runtime versus DOR, because the
closed-loop runtime is a worst-case metric and the corner-to-corner
transpose pairs route minimally under VAL too (Fig. 12).
"""

from __future__ import annotations

from conftest import BATCH_SIZE, emit, once

from repro.analysis import format_table
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator

ALGS = ("dor", "ma", "romm", "val")
M_VALUES = (1, 4, 16)


def _sweep(traffic):
    out = {}
    for alg in ALGS:
        cfg = NetworkConfig(routing=alg, traffic=traffic)
        for m in M_VALUES:
            res = BatchSimulator(cfg, batch_size=BATCH_SIZE, max_outstanding=m).run()
            out[alg, m] = res
    return out


def test_fig10a_uniform_random(benchmark):
    out = once(benchmark, lambda: _sweep("uniform_random"))
    base = out["dor", 1].runtime
    rows = [
        [m] + [out[a, m].runtime / base for a in ALGS] + [out[a, m].throughput for a in ALGS]
        for m in M_VALUES
    ]
    text = format_table(
        ["m"] + [f"T {a}" for a in ALGS] + [f"theta {a}" for a in ALGS],
        rows,
        precision=3,
        title="Figure 10(a) - batch model, uniform random (normalized to DOR m=1)",
    ) + "\npaper: VAL slowest at low m (2x zero-load) and lowest throughput at high m"
    emit("fig10a_batch_routing_uniform", text)
    assert out["val", 1].runtime > 1.5 * out["dor", 1].runtime
    assert out["val", 16].throughput < out["dor", 16].throughput


def test_fig10b_transpose(benchmark):
    out = once(benchmark, lambda: _sweep("transpose"))
    base = out["dor", 1].runtime
    rows = [
        [m] + [out[a, m].runtime / base for a in ALGS] + [out[a, m].throughput for a in ALGS]
        for m in M_VALUES
    ]
    gap = out["val", 1].runtime / out["dor", 1].runtime - 1
    text = format_table(
        ["m"] + [f"T {a}" for a in ALGS] + [f"theta {a}" for a in ALGS],
        rows,
        precision=3,
        title="Figure 10(b) - batch model, transpose (normalized to DOR m=1)",
    ) + (
        f"\nVAL vs DOR runtime at m=1: {100 * gap:+.1f}% (paper: +1.7% - "
        f"worst-case corner pairs are minimal under VAL too, Fig. 12)\n"
        f"VAL avg request latency at m=1 is "
        f"{out['val', 1].avg_request_latency / out['dor', 1].avg_request_latency:.2f}x "
        f"DOR's (the average is much worse; the worst case is not)"
    )
    emit("fig10b_batch_routing_transpose", text)
    assert abs(gap) < 0.08
    assert out["val", 1].avg_request_latency > 1.25 * out["dor", 1].avg_request_latency
    # at high m, path diversity wins on transpose: MA clearly beats DOR
    # (open-loop Fig 9b agrees).  Deviation: our VAL lands in the overload
    # regime at high m, where its doubled channel use halves goodput, so
    # unlike the paper's m=32 point it does not overtake DOR here.
    assert out["ma", 16].throughput > 1.3 * out["dor", 16].throughput
